package costmodel

import (
	"math"
	"math/bits"
)

// joinRels costs the join of two planned relations over every combination of
// their achievable partitioning properties and every distributed strategy:
//
//   - co-located join (both sides partitioned on the join class, or a side
//     replicated): no network traffic;
//   - repartition one side onto the join class;
//   - symmetric repartitioning of both sides;
//   - broadcast the smaller side.
//
// The resulting relation keeps, per achievable output property, the cheapest
// total cost — the "interesting order" bookkeeping that lets downstream
// joins go co-located.
func (q *qctx) joinRels(r1, r2 *rel, m1, m2 uint64, classes []int) *rel {
	hw := q.m.HW
	n := float64(hw.Nodes)
	outMask := m1 | m2
	out := &rel{
		rows:  q.cardinality(outMask),
		width: q.subsetWidth(outMask),
		props: make(map[int]float64),
	}
	bytes1 := r1.rows * r1.width
	bytes2 := r2.rows * r2.width
	// Moving tuples costs wire time plus per-tuple (de)serialization CPU —
	// distributed engines rarely shuffle at wire speed. Serialization is
	// cheaper than hash-join processing (serializationSpeedup x).
	netTime := func(bytesMoved, rowsMoved float64) float64 {
		return bytesMoved/(n*hw.NetBytesPerSec) + rowsMoved/(n*serializationSpeedup*hw.CPUTuplesPerSec)
	}
	// cpuTime estimates the per-node hash-join wall time: build + probe +
	// output materialization, at the given effective parallelism per side.
	cpuTime := func(buildRows, buildEff, probeRows, probeEff, outEff float64) float64 {
		return (buildRows/buildEff + probeRows/probeEff + out.rows/outEff) / hw.CPUTuplesPerSec
	}
	// The paper's cost model is deliberately "simple yet generic" and
	// network-centric: compute costs assume full parallelism n regardless of
	// how coarse or skewed the join-key distribution is (only replicated
	// inputs, processed in full on every node, run at parallelism 1).
	// Skew-induced stragglers therefore only surface in the online phase,
	// where the engine measures them — one of the inaccuracies that lets
	// online refinement improve on offline training (§7.3).
	propEff := func(p int) float64 {
		if p == propReplicated {
			return 1 // every node holds (and would process) the full copy
		}
		return n
	}
	record := func(prop int, cost float64) {
		if old, ok := out.props[prop]; !ok || cost < old {
			out.props[prop] = cost
		}
	}

	for p1, c1 := range r1.props {
		for p2, c2 := range r2.props {
			base := c1 + c2
			switch {
			case p1 == propReplicated && p2 == propReplicated:
				// Fully local; result is replicated too.
				record(propReplicated, base+cpuTime(math.Min(r1.rows, r2.rows), 1, math.Max(r1.rows, r2.rows), 1, 1))
				continue
			case p1 == propReplicated:
				// Build the replicated side on every node, probe the
				// partitioned side locally.
				record(p2, base+cpuTime(r1.rows, 1, r2.rows, propEff(p2), propEff(p2)))
			case p2 == propReplicated:
				record(p1, base+cpuTime(r2.rows, 1, r1.rows, propEff(p1), propEff(p1)))
			default:
				// Both partitioned.
				small, large := r1, r2
				pLarge := p2
				bSmall := bytes1
				if bytes2 < bytes1 {
					small, large = r2, r1
					pLarge = p1
					bSmall = bytes2
				}
				// Broadcast the smaller side.
				record(pLarge, base+netTime(bSmall*(n-1), small.rows*(n-1))+
					cpuTime(small.rows, 1, large.rows, propEff(pLarge), propEff(pLarge)))
				for _, c := range classes {
					eff := n
					switch {
					case p1 == c && p2 == c:
						record(c, base+cpuTime(math.Min(r1.rows, r2.rows), eff, math.Max(r1.rows, r2.rows), eff, eff))
					case p1 == c:
						record(c, base+netTime(bytes2*(n-1)/n, r2.rows*(n-1)/n)+
							cpuTime(math.Min(r1.rows, r2.rows), eff, math.Max(r1.rows, r2.rows), eff, eff))
					case p2 == c:
						record(c, base+netTime(bytes1*(n-1)/n, r1.rows*(n-1)/n)+
							cpuTime(math.Min(r1.rows, r2.rows), eff, math.Max(r1.rows, r2.rows), eff, eff))
					default:
						// Symmetric repartitioning of both sides.
						record(c, base+netTime((bytes1+bytes2)*(n-1)/n, (r1.rows+r2.rows)*(n-1)/n)+
							cpuTime(math.Min(r1.rows, r2.rows), eff, math.Max(r1.rows, r2.rows), eff, eff))
					}
				}
			}
		}
	}
	return out
}

// dpPlan enumerates join orders over a connected component with dynamic
// programming over connected subsets (a compact DPccp variant), keeping the
// cheapest cost per output partitioning property.
func (q *qctx) dpPlan(comp uint64) *rel {
	best := make(map[uint64]*rel)
	// Leaves.
	rem := comp
	for rem != 0 {
		i := bits.TrailingZeros64(rem)
		rem &^= 1 << uint(i)
		best[1<<uint(i)] = q.leafRel(i)
	}
	// Subsets in increasing popcount order, enumerated as sub-masks of comp.
	subsets := subsetsAscending(comp)
	for _, mask := range subsets {
		if bits.OnesCount64(mask) < 2 || !q.connected(mask) {
			continue
		}
		var acc *rel
		// Enumerate proper sub-splits; (s1, s2) and (s2, s1) are the same
		// split, so only visit s1 containing the lowest bit of mask.
		low := uint64(1) << uint(bits.TrailingZeros64(mask))
		for s1 := (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask {
			if s1&low == 0 {
				continue
			}
			s2 := mask &^ s1
			r1, ok1 := best[s1]
			r2, ok2 := best[s2]
			if !ok1 || !ok2 {
				continue
			}
			classes, any, _ := q.connectingClasses(s1, s2)
			if !any {
				continue
			}
			j := q.joinRels(r1, r2, s1, s2, classes)
			if acc == nil {
				acc = j
			} else {
				for p, c := range j.props {
					if old, ok := acc.props[p]; !ok || c < old {
						acc.props[p] = c
					}
				}
			}
		}
		if acc != nil {
			best[mask] = acc
		}
	}
	if r, ok := best[comp]; ok {
		return r
	}
	// Should not happen for connected components; fall back to greedy.
	return q.greedyPlan(comp)
}

// subsetsAscending lists all non-empty submasks of comp ordered by popcount
// (then numerically) so DP dependencies are ready when needed.
func subsetsAscending(comp uint64) []uint64 {
	var subs []uint64
	for s := comp; s != 0; s = (s - 1) & comp {
		subs = append(subs, s)
	}
	sortByPopcount(subs)
	return subs
}

func sortByPopcount(subs []uint64) {
	// Counting sort over popcount keeps this O(n).
	buckets := make([][]uint64, 65)
	for _, s := range subs {
		pc := bits.OnesCount64(s)
		buckets[pc] = append(buckets[pc], s)
	}
	i := 0
	for _, b := range buckets {
		for _, s := range b {
			subs[i] = s
			i++
		}
	}
}

// greedyPlan joins the pair of relations with the smallest estimated output
// first — the fallback for components too large for the DP.
func (q *qctx) greedyPlan(comp uint64) *rel {
	type entry struct {
		mask uint64
		rel  *rel
	}
	var items []entry
	rem := comp
	for rem != 0 {
		i := bits.TrailingZeros64(rem)
		rem &^= 1 << uint(i)
		items = append(items, entry{mask: 1 << uint(i), rel: q.leafRel(i)})
	}
	for len(items) > 1 {
		bi, bj := -1, -1
		bestRows := math.Inf(1)
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				if _, any, _ := q.connectingClasses(items[i].mask, items[j].mask); !any {
					continue
				}
				if r := q.cardinality(items[i].mask | items[j].mask); r < bestRows {
					bestRows, bi, bj = r, i, j
				}
			}
		}
		if bi < 0 {
			// Disconnected remainder (cartesian): combine the two smallest
			// by broadcasting; approximate with the generic join cost and
			// no shared class.
			bi, bj = 0, 1
		}
		classes, _, _ := q.connectingClasses(items[bi].mask, items[bj].mask)
		joined := entry{
			mask: items[bi].mask | items[bj].mask,
			rel:  q.joinRels(items[bi].rel, items[bj].rel, items[bi].mask, items[bj].mask, classes),
		}
		items[bi] = joined
		items = append(items[:bj], items[bj+1:]...)
	}
	return items[0].rel
}
