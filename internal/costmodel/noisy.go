package costmodel

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"partadvisor/internal/partition"
	"partadvisor/internal/sqlparse"
	"partadvisor/internal/workload"
)

// NoisyModel wraps a Model with deterministic multiplicative estimation
// error whose magnitude grows with the number of joins — following Leis et
// al.'s observation that optimizer estimates degrade on complex queries.
// It stands in for a DBMS-internal optimizer cost model: the
// Minimum-Optimizer baseline minimizes *these* estimates and therefore
// suffers the winner's curse on complex schemas (the paper's Fig. 3c), while
// the DRL agent trained on real runtimes does not.
//
// The error is a deterministic function of (query structure, designs of the
// tables the query touches), so the same partitioning always receives the
// same estimate — exactly like a real optimizer, which is consistently wrong
// rather than randomly wrong.
type NoisyModel struct {
	Base *Model
	// SigmaPerJoin is the standard deviation of the log-space error
	// contributed per join. Zero disables the noise.
	SigmaPerJoin float64
	// Salt differentiates deployments (e.g. before/after stale statistics).
	Salt uint64
}

// QueryCost returns the noisy estimate for one query.
func (nm *NoisyModel) QueryCost(st *partition.State, g *sqlparse.Graph) float64 {
	c := nm.Base.QueryCost(st, g)
	j := len(g.Joins)
	if j == 0 || nm.SigmaPerJoin == 0 {
		return c
	}
	z := gaussHash(graphSignature(g), st.TableSignature(g.BaseTables()), nm.Salt)
	return c * math.Exp(nm.SigmaPerJoin*math.Sqrt(float64(j))*z)
}

// WorkloadCost returns the noisy estimate of the workload mix.
func (nm *NoisyModel) WorkloadCost(st *partition.State, wl *workload.Workload, freq workload.FreqVector) float64 {
	total := 0.0
	for i, q := range wl.Queries {
		if i >= len(freq) || freq[i] == 0 {
			continue
		}
		total += freq[i] * q.Weight * nm.QueryCost(st, q.Graph)
	}
	return total
}

// graphSignature canonicalizes a query's structure for hashing.
func graphSignature(g *sqlparse.Graph) string {
	var b strings.Builder
	for _, r := range g.Refs {
		fmt.Fprintf(&b, "%s:%s;", r.Alias, r.Table)
	}
	for _, j := range g.Joins {
		b.WriteString(j.String())
		b.WriteByte(';')
	}
	for _, f := range g.Filters {
		fmt.Fprintf(&b, "%s.%s%v%v%v;", f.Alias, f.Column, f.Op, f.Args, f.Neg)
	}
	return b.String()
}

// gaussHash derives an approximately standard-normal value from the hashed
// inputs via the Irwin–Hall construction (sum of 12 uniforms minus 6).
func gaussHash(parts ...interface{}) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	x := h.Sum64()
	sum := 0.0
	for i := 0; i < 12; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		sum += float64(x>>11) / float64(1<<53)
	}
	return sum - 6
}
