package costmodel

import (
	"math/rand"
	"testing"

	"partadvisor/internal/hardware"
	"partadvisor/internal/partition"
)

// Property tests on the cost model's economic sanity.

func TestCostMonotoneInRows(t *testing.T) {
	// Growing a table never makes any query under any design cheaper.
	sp := cmSpace()
	g := mustGraph(t, "SELECT * FROM fact f, dbig b, dsmall s WHERE f.f_big = b.b_id AND f.f_small = s.s_id")
	rng := rand.New(rand.NewSource(5))
	var buf []int
	for trial := 0; trial < 20; trial++ {
		st := sp.InitialState()
		for i := 0; i < rng.Intn(6); i++ {
			ai := sp.RandomValidAction(st, rng, buf)
			st = sp.Apply(st, sp.Actions()[ai])
		}
		small := New(cmCatalog(), hardware.PostgresXLDisk())
		big := New(cmCatalog(), hardware.PostgresXLDisk())
		for _, tbl := range []string{"fact", "dbig", "dsmall"} {
			big.Cat.Tables[tbl].Rows *= 4
		}
		cs, cb := small.QueryCost(st, g), big.QueryCost(st, g)
		if cb < cs {
			t.Fatalf("4x rows got cheaper under %s: %v -> %v", st, cs, cb)
		}
	}
}

func TestCostMonotoneInBandwidth(t *testing.T) {
	// A slower interconnect never makes any design cheaper.
	sp := cmSpace()
	g := mustGraph(t, "SELECT * FROM fact f, dbig b WHERE f.f_big = b.b_id")
	rng := rand.New(rand.NewSource(6))
	var buf []int
	fast := New(cmCatalog(), hardware.SystemXMemory())
	slow := New(cmCatalog(), hardware.SystemXMemory().WithSlowNetwork())
	for trial := 0; trial < 30; trial++ {
		st := sp.InitialState()
		for i := 0; i < rng.Intn(5); i++ {
			ai := sp.RandomValidAction(st, rng, buf)
			st = sp.Apply(st, sp.Actions()[ai])
		}
		cf, csl := fast.QueryCost(st, g), slow.QueryCost(st, g)
		if csl < cf-1e-12 {
			t.Fatalf("slow network got cheaper under %s: %v -> %v", st, cf, csl)
		}
	}
}

func TestEdgeBitsDoNotChangeCost(t *testing.T) {
	// Edge activation bits are agent bookkeeping: two states with the same
	// physical layout must cost the same.
	sp := cmSpace()
	m := cmModel()
	g := mustGraph(t, "SELECT * FROM fact f, dbig b, dsmall s WHERE f.f_big = b.b_id AND f.f_small = s.s_id")
	// Layout via edge activation.
	var edgeIdx int
	found := false
	for i, e := range sp.Edges {
		if e.Touches("dbig") {
			edgeIdx = i
			found = true
		}
	}
	if !found {
		t.Fatalf("no dbig edge")
	}
	viaEdge := sp.Apply(sp.InitialState(), partition.Action{Kind: partition.ActActivateEdge, Edge: edgeIdx})
	// Same layout via direct partition actions.
	direct := sp.InitialState()
	fIdx := sp.TableIndex("fact")
	ki := sp.Tables[fIdx].KeyIndex(partition.Key{"f_big"})
	direct = sp.Apply(direct, partition.Action{Kind: partition.ActPartition, Table: fIdx, Key: ki})
	if !viaEdge.SameLayout(direct) {
		t.Fatalf("layouts differ: %s vs %s", viaEdge, direct)
	}
	if a, b := m.QueryCost(viaEdge, g), m.QueryCost(direct, g); a != b {
		t.Fatalf("edge bit changed cost: %v vs %v", a, b)
	}
}

func TestDeterministicAcrossModels(t *testing.T) {
	// Two models over equal catalogs agree exactly.
	sp := cmSpace()
	g := mustGraph(t, "SELECT * FROM fact f, dsmall s WHERE f.f_small = s.s_id")
	m1 := New(cmCatalog(), hardware.PostgresXLDisk())
	m2 := New(cmCatalog(), hardware.PostgresXLDisk())
	st := sp.InitialState()
	if a, b := m1.QueryCost(st, g), m2.QueryCost(st, g); a != b {
		t.Fatalf("models disagree: %v vs %v", a, b)
	}
}
