// Package costmodel implements the paper's "simple yet generic network-
// centric cost model" (§2, §4.1): given a partitioning state, a query's join
// graph and table metadata (row counts, widths, distinct values), it
// enumerates join orders like an optimizer, picks the cheapest distributed
// join strategy per join (co-located, broadcast one side, repartition one
// side, symmetric repartitioning) and returns the estimated query time in
// seconds under a hardware profile.
//
// Estimates from this model are the rewards of the offline training phase.
// The same model, wrapped with deterministic estimation noise that grows
// with join count (NoisyModel), doubles as the inaccurate DBMS-internal
// optimizer estimate consumed by the Minimum-Optimizer baseline.
package costmodel

import (
	"math"
	"math/bits"
	"sync"

	"partadvisor/internal/hardware"
	"partadvisor/internal/partition"
	"partadvisor/internal/sqlparse"
	"partadvisor/internal/stats"
	"partadvisor/internal/workload"
)

// Model estimates query and workload costs for partitioning states. It is
// safe for concurrent use: planCost is a pure function of the (immutable)
// catalog and hardware profile, and the memo map below is guarded by a
// read-write mutex, so the training loop's speculative prefetch workers can
// evaluate candidate designs in parallel with the main loop. Two goroutines
// racing on the same uncached (state, query) both compute the identical
// plan cost, so which one's store wins is unobservable.
type Model struct {
	Cat *stats.Catalog
	HW  hardware.Profile

	// cache memoizes per-query costs by the signature of the designs of
	// exactly the tables the query touches (the same idea as the paper's
	// Query Runtime Cache, applied to estimates).
	mu    sync.RWMutex
	cache map[*sqlparse.Graph]map[string]float64
}

// New returns a model over the given catalog and hardware profile.
func New(cat *stats.Catalog, hw hardware.Profile) *Model {
	return &Model{Cat: cat, HW: hw, cache: make(map[*sqlparse.Graph]map[string]float64)}
}

// ResetCache drops memoized costs. Call after the catalog changes.
func (m *Model) ResetCache() {
	m.mu.Lock()
	m.cache = make(map[*sqlparse.Graph]map[string]float64)
	m.mu.Unlock()
}

// QueryCost estimates the runtime of one query under the partitioning state.
func (m *Model) QueryCost(st *partition.State, g *sqlparse.Graph) float64 {
	sig := st.TableSignature(g.BaseTables())
	m.mu.RLock()
	if per := m.cache[g]; per != nil {
		if c, ok := per[sig]; ok {
			m.mu.RUnlock()
			return c
		}
	}
	m.mu.RUnlock()
	// Plan outside the lock: planCost is pure, so concurrent duplicate
	// computation yields bitwise-identical values.
	c := m.planCost(st, g)
	m.mu.Lock()
	per := m.cache[g]
	if per == nil {
		per = make(map[string]float64)
		m.cache[g] = per
	}
	per[sig] = c
	m.mu.Unlock()
	return c
}

// WorkloadCost estimates Σ_j f_j · cm(P, q_j) over the workload mix —
// the (negated) reward of the offline phase.
func (m *Model) WorkloadCost(st *partition.State, wl *workload.Workload, freq workload.FreqVector) float64 {
	total := 0.0
	for i, q := range wl.Queries {
		if i >= len(freq) || freq[i] == 0 {
			continue
		}
		total += freq[i] * q.Weight * m.QueryCost(st, q.Graph)
	}
	return total
}

// property constants: the "interesting partitioning" of an intermediate
// result. Non-negative values are join-attribute equivalence classes.
const (
	propNone       = -1 // partitioned, but not on any join class
	propReplicated = -2 // full copy on every node
)

// rel is one planned relation (base alias or intermediate).
type rel struct {
	rows  float64
	width float64 // bytes per row
	// props maps property -> cheapest cost achieving it.
	props map[int]float64
}

// planCost runs the join-order enumeration.
func (m *Model) planCost(st *partition.State, g *sqlparse.Graph) float64 {
	q := m.analyze(st, g)
	var total float64
	for _, comp := range q.components() {
		var r *rel
		if bits.OnesCount64(comp) <= maxDPAliases {
			r = q.dpPlan(comp)
		} else {
			r = q.greedyPlan(comp)
		}
		total += minCost(r.props)
	}
	return total + m.HW.QueryOverheadSec
}

const maxDPAliases = 12

// serializationSpeedup: tuples (de)serialize this many times faster than
// they are processed by a hash join.
const serializationSpeedup = 4

func minCost(props map[int]float64) float64 {
	best := math.Inf(1)
	for _, c := range props {
		if c < best {
			best = c
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// qctx is the per-query planning context.
type qctx struct {
	m       *Model
	aliases []aliasInfo
	classes map[colRef]int // (alias, col) -> equivalence class
	nClass  int
	edges   []edgeInfo
	// classDistinct[class] = min adjusted distinct over member columns.
	classDistinct []float64
	// adj[i] = bitmask of aliases joined to alias i.
	adj []uint64
	// subset cardinality memo
	cardMemo map[uint64]float64
}

type colRef struct {
	alias string
	col   string
}

type aliasInfo struct {
	alias string
	table string
	// baseRows/bytes before filters (scan volume), rows after filters.
	baseRows  float64
	baseBytes float64
	rows      float64
	width     float64
	// scanCost, prop: derived from the partitioning design.
	scanCost float64
	prop     int
}

type edgeInfo struct {
	l, r  int // alias indices
	class int
	semi  bool
}

// analyze resolves base cardinalities, filter selectivities, join classes
// and per-alias scan costs + properties for the given state.
func (m *Model) analyze(st *partition.State, g *sqlparse.Graph) *qctx {
	q := &qctx{m: m, classes: make(map[colRef]int), cardMemo: make(map[uint64]float64)}
	idx := make(map[string]int, len(g.Refs))
	for _, ref := range g.Refs {
		idx[ref.Alias] = len(q.aliases)
		q.aliases = append(q.aliases, aliasInfo{alias: ref.Alias, table: ref.Table})
	}
	// Join-attribute equivalence classes via union-find.
	parent := make([]int, 0, 2*len(g.Joins))
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	colID := make(map[colRef]int)
	id := func(c colRef) int {
		if i, ok := colID[c]; ok {
			return i
		}
		i := len(parent)
		parent = append(parent, i)
		colID[c] = i
		return i
	}
	for _, j := range g.Joins {
		a := id(colRef{j.LeftAlias, j.LeftCol})
		b := id(colRef{j.RightAlias, j.RightCol})
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	rootClass := make(map[int]int)
	for c, i := range colID {
		r := find(i)
		cl, ok := rootClass[r]
		if !ok {
			cl = q.nClass
			rootClass[r] = cl
			q.nClass++
		}
		q.classes[c] = cl
	}
	// Per-alias rows, widths, scan cost, property.
	cat := m.Cat
	for i := range q.aliases {
		ai := &q.aliases[i]
		ts := cat.Table(ai.table)
		rows := float64(cat.Rows(ai.table))
		if rows < 1 {
			rows = 1
		}
		width := 64.0
		if ts != nil && ts.RowWidth > 0 {
			width = float64(ts.RowWidth)
		}
		ai.baseRows = rows
		ai.baseBytes = rows * width
		sel := 1.0
		for _, f := range g.FiltersFor(ai.alias) {
			s := cat.Selectivity(ai.table, f.Column, f.Op, f.Args)
			if f.Neg {
				s = 1 - s
			}
			sel *= s
		}
		ai.rows = math.Max(1, rows*sel)
		ai.width = width
		m.scanLeaf(st, ai)
		if ai.prop != propReplicated {
			if key, ok := st.KeyOf(ai.table); ok && len(key) == 1 {
				if cl, ok := q.classes[colRef{ai.alias, key[0]}]; ok {
					ai.prop = cl
				}
			}
		}
	}
	// Edges + adjacency.
	q.adj = make([]uint64, len(q.aliases))
	for _, j := range g.Joins {
		l, r := idx[j.LeftAlias], idx[j.RightAlias]
		cl := q.classes[colRef{j.LeftAlias, j.LeftCol}]
		q.edges = append(q.edges, edgeInfo{l: l, r: r, class: cl, semi: j.Semi || j.Anti})
		q.adj[l] |= 1 << uint(r)
		q.adj[r] |= 1 << uint(l)
	}
	// Class distinct values (adjusted by filters: distinct <= rows).
	q.classDistinct = make([]float64, q.nClass)
	for i := range q.classDistinct {
		q.classDistinct[i] = math.Inf(1)
	}
	for c, cl := range q.classes {
		ai := q.aliases[idx[c.alias]]
		d := math.Min(float64(cat.Distinct(ai.table, c.col)), ai.rows)
		if d < 1 {
			d = 1
		}
		if d < q.classDistinct[cl] {
			q.classDistinct[cl] = d
		}
	}
	return q
}

// scanLeaf fills the scan cost and output property of a base alias under
// the current design.
func (m *Model) scanLeaf(st *partition.State, ai *aliasInfo) {
	hw := m.HW
	d := st.Design(ai.table)
	if d.Replicated {
		// Every node holds and scans the full table; the scan is not
		// distributed (the crux of the paper's Exp. 5 trade-off).
		ai.scanCost = ai.baseBytes / hw.ScanBytesPerSec
		ai.prop = propReplicated
		return
	}
	key, _ := st.KeyOf(ai.table)
	neff := m.parallelism(ai.table, key)
	ai.scanCost = ai.baseBytes / hw.ScanBytesPerSec / neff
	ai.prop = propNone
}

// parallelism estimates the effective parallel speedup of work distributed
// by hashing the given key: limited by the node count, the key's distinct
// values (few values -> coarse shards) and value skew (heavy values ->
// stragglers). Compound keys spread well and carry no skew penalty — this
// is what makes the TPC-CH compound warehouse+district key attractive on
// the in-memory engine (paper §7.2).
func (m *Model) parallelism(table string, key partition.Key) float64 {
	n := float64(m.HW.Nodes)
	if len(key) == 0 {
		return n
	}
	// The simple cost model knows only metadata: the distinct count of the
	// partitioning key bounds the shard granularity (this is what makes the
	// compound warehouse+district key attractive, §7.2), but value-frequency
	// skew — which requires observing the data — is invisible offline. The
	// online phase measures it on the real (sampled) database instead.
	var distinct float64
	if len(key) == 1 {
		distinct = float64(m.Cat.Distinct(table, key[0]))
	} else {
		distinct = 1
		for _, a := range key {
			distinct *= float64(m.Cat.Distinct(table, a))
			if distinct > 1e12 {
				break
			}
		}
	}
	return effectiveParallelism(n, distinct, 1)
}

// effectiveParallelism combines node count, distinct count and skew into the
// usable parallel speedup in [1, n].
func effectiveParallelism(n, distinct, skew float64) float64 {
	if distinct < 1 {
		distinct = 1
	}
	imbalance := 1.0
	if distinct < 8*n {
		perNode := distinct / n
		imbalance = math.Ceil(perNode) / math.Max(perNode, 1e-9)
		if distinct < n {
			imbalance = n / distinct
		}
	}
	eff := n / (imbalance * skew)
	if eff < 1 {
		return 1
	}
	if eff > n {
		return n
	}
	return eff
}

// components returns the connected components of the alias join graph as
// bitmasks (cartesian components are combined by the caller).
func (q *qctx) components() []uint64 {
	n := len(q.aliases)
	seen := make([]bool, n)
	var out []uint64
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		var mask uint64
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			mask |= 1 << uint(v)
			for u := 0; u < n; u++ {
				if !seen[u] && q.adj[v]&(1<<uint(u)) != 0 {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		out = append(out, mask)
	}
	return out
}

// cardinality estimates |⋈ S| with the textbook independence model:
// product of filtered base cardinalities times 1/max-distinct per join edge
// inside S (counting each class-pair once per edge).
func (q *qctx) cardinality(mask uint64) float64 {
	if r, ok := q.cardMemo[mask]; ok {
		return r
	}
	rows := 1.0
	for i := range q.aliases {
		if mask&(1<<uint(i)) != 0 {
			rows *= q.aliases[i].rows
		}
	}
	for _, e := range q.edges {
		if mask&(1<<uint(e.l)) != 0 && mask&(1<<uint(e.r)) != 0 {
			d := q.classDistinct[e.class]
			if d > 1 {
				rows /= d
			}
		}
	}
	if rows < 1 {
		rows = 1
	}
	q.cardMemo[mask] = rows
	return rows
}

// width estimates the output row width of a subset (semijoined aliases do
// not contribute columns; the approximation of summing all members is kept
// for simplicity and documented in DESIGN.md).
func (q *qctx) subsetWidth(mask uint64) float64 {
	w := 0.0
	for i := range q.aliases {
		if mask&(1<<uint(i)) != 0 {
			w += q.aliases[i].width
		}
	}
	return w
}

// leafRel builds the rel for a single alias.
func (q *qctx) leafRel(i int) *rel {
	ai := q.aliases[i]
	return &rel{
		rows:  ai.rows,
		width: ai.width,
		props: map[int]float64{ai.prop: ai.scanCost},
	}
}

// connected reports whether the subset is connected in the join graph.
func (q *qctx) connected(mask uint64) bool {
	start := uint(bits.TrailingZeros64(mask))
	var seen uint64 = 1 << start
	stack := []uint{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		next := q.adj[v] & mask &^ seen
		for next != 0 {
			u := uint(bits.TrailingZeros64(next))
			next &^= 1 << u
			seen |= 1 << u
			stack = append(stack, u)
		}
	}
	return seen == mask
}

// connectingClasses returns the distinct join classes of edges crossing
// between the two subsets, and whether any crossing edge is a semijoin.
func (q *qctx) connectingClasses(m1, m2 uint64) (classes []int, any bool, semi bool) {
	seen := make(map[int]bool)
	for _, e := range q.edges {
		lIn1 := m1&(1<<uint(e.l)) != 0
		rIn1 := m1&(1<<uint(e.r)) != 0
		lIn2 := m2&(1<<uint(e.l)) != 0
		rIn2 := m2&(1<<uint(e.r)) != 0
		if (lIn1 && rIn2) || (lIn2 && rIn1) {
			any = true
			if e.semi {
				semi = true
			}
			if !seen[e.class] {
				seen[e.class] = true
				classes = append(classes, e.class)
			}
		}
	}
	return classes, any, semi
}
