// Package hardware describes cluster deployments: node count, interconnect
// bandwidth, scan throughput and join processing rate. Profiles feed both
// the offline network-centric cost model and the execution engine's
// simulated-time accounting, and they are the lever behind the paper's
// Exp. 5 (adaptivity to deployments): the same schema and workload lead to
// different optimal partitionings on a 10 Gbps vs a 0.6 Gbps interconnect,
// and on standard vs slower compute nodes.
package hardware

// Profile is one cluster deployment.
type Profile struct {
	// Name identifies the profile in experiment output.
	Name string
	// Nodes is the cluster size (the number of shards of partitioned
	// tables; replicated tables are copied to every node).
	Nodes int
	// NetBytesPerSec is the per-node interconnect bandwidth.
	NetBytesPerSec float64
	// ScanBytesPerSec is the per-node table scan throughput (disk- or
	// memory-bound depending on the engine flavor).
	ScanBytesPerSec float64
	// CPUTuplesPerSec is the per-node join processing rate (hash build +
	// probe tuples per second).
	CPUTuplesPerSec float64
	// QueryOverheadSec is the fixed per-query cost (parsing, optimization,
	// dispatch, result assembly).
	QueryOverheadSec float64
	// RepartitionOverheadSec is the fixed cost of one ALTER TABLE ...
	// DISTRIBUTE BY, on top of the data movement.
	RepartitionOverheadSec float64
}

const gbps = 1e9 / 8 // bytes per second per Gbit/s

// Fixed overheads are calibrated to "repro scale": the materialized
// datasets are ~1000x smaller than the paper's SF=100 deployments, so the
// per-query and per-repartition constants shrink accordingly — otherwise
// they would dominate every measurement and flatten the partitioning
// trade-offs the experiments exist to expose.

// PostgresXLDisk models the paper's Postgres-XL deployment: 4 nodes with a
// 10 Gbps interconnect; scans are disk-bound.
func PostgresXLDisk() Profile {
	return Profile{
		Name:  "pgxl-disk-10gbps",
		Nodes: 4,
		// Effective shuffle throughput, not wire speed: Postgres-XL moves
		// tuples through coordinator-mediated row streams, which saturate
		// far below the 10 Gbps NIC. The in-memory System-X profile, with
		// its optimized transport, keeps full wire speed.
		NetBytesPerSec:         150e6,
		ScanBytesPerSec:        200e6,
		CPUTuplesPerSec:        15e6,
		QueryOverheadSec:       2e-3,
		RepartitionOverheadSec: 2e-2,
	}
}

// SystemXMemory models the paper's commercial in-memory DBMS: scans are
// memory-bound, so network costs dominate distributed joins.
func SystemXMemory() Profile {
	return Profile{
		Name:                   "sysx-mem-10gbps",
		Nodes:                  4,
		NetBytesPerSec:         10 * gbps,
		ScanBytesPerSec:        8e9,
		CPUTuplesPerSec:        60e6,
		QueryOverheadSec:       2e-4,
		RepartitionOverheadSec: 5e-3,
	}
}

// WithSlowNetwork returns the profile with a 0.6 Gbps interconnect — the
// bandwidth of the basic Amazon Redshift deployment used in Exp. 5.
func (p Profile) WithSlowNetwork() Profile {
	p.Name += "+slownet-0.6gbps"
	p.NetBytesPerSec = 0.6 * gbps
	return p
}

// WithSlowCompute returns the profile on less powerful nodes (Exp. 5b):
// scan and join throughput shrink so compute costs dominate and the benefit
// of replication (which trades network for scan/build work) narrows.
func (p Profile) WithSlowCompute() Profile {
	p.Name += "+slowcpu"
	p.ScanBytesPerSec /= 2
	p.CPUTuplesPerSec /= 2
	return p
}

// WithNodes returns the profile resized to n nodes.
func (p Profile) WithNodes(n int) Profile {
	p.Nodes = n
	return p
}
