package hardware

import "testing"

func TestProfiles(t *testing.T) {
	disk := PostgresXLDisk()
	mem := SystemXMemory()
	if disk.Nodes != 4 || mem.Nodes != 4 {
		t.Fatalf("node counts: %d / %d", disk.Nodes, mem.Nodes)
	}
	if mem.ScanBytesPerSec <= disk.ScanBytesPerSec {
		t.Fatalf("memory scans must be faster than disk")
	}
	// Disk profile charges effective (protocol-bound) shuffle throughput,
	// below the memory engine's wire speed.
	if disk.NetBytesPerSec >= mem.NetBytesPerSec {
		t.Fatalf("disk effective net %v >= memory %v", disk.NetBytesPerSec, mem.NetBytesPerSec)
	}
	if disk.QueryOverheadSec <= 0 || disk.RepartitionOverheadSec <= 0 {
		t.Fatalf("disk overheads must be positive")
	}
}

func TestWithSlowNetwork(t *testing.T) {
	base := SystemXMemory()
	slow := base.WithSlowNetwork()
	if slow.NetBytesPerSec >= base.NetBytesPerSec {
		t.Fatalf("slow network not slower")
	}
	if slow.NetBytesPerSec != 0.6*1e9/8 {
		t.Fatalf("slow network = %v, want 0.6 Gbps", slow.NetBytesPerSec)
	}
	// The base profile is unchanged (value receiver).
	if base.NetBytesPerSec != 10*1e9/8 {
		t.Fatalf("base mutated: %v", base.NetBytesPerSec)
	}
	if slow.Name == base.Name {
		t.Fatalf("slow profile must be distinguishable by name")
	}
}

func TestWithSlowCompute(t *testing.T) {
	base := SystemXMemory()
	slow := base.WithSlowCompute()
	if slow.ScanBytesPerSec != base.ScanBytesPerSec/2 || slow.CPUTuplesPerSec != base.CPUTuplesPerSec/2 {
		t.Fatalf("slow compute = %+v", slow)
	}
	if slow.NetBytesPerSec != base.NetBytesPerSec {
		t.Fatalf("slow compute must not change the network")
	}
}

func TestWithNodes(t *testing.T) {
	if got := PostgresXLDisk().WithNodes(6).Nodes; got != 6 {
		t.Fatalf("WithNodes = %d", got)
	}
}

func TestModifiersCompose(t *testing.T) {
	p := SystemXMemory().WithSlowCompute().WithSlowNetwork().WithNodes(5)
	if p.Nodes != 5 || p.NetBytesPerSec != 0.6*1e9/8 || p.ScanBytesPerSec != SystemXMemory().ScanBytesPerSec/2 {
		t.Fatalf("composed profile = %+v", p)
	}
}
