// Package prof wires the -cpuprofile/-memprofile CLI flags to runtime/pprof
// with the conventional semantics of the Go test binary: the CPU profile
// covers the whole run, the heap profile is a snapshot taken right before a
// clean exit. Errors are reported to stderr rather than aborting the run —
// a broken profile path must not kill a long training job.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path and returns the stop function to
// defer; with an empty path it is a no-op returning nil. Note that a
// process exiting via os.Exit skips deferred stops and leaves the profile
// truncated — profiles are for runs that complete.
func StartCPU(path string) func() {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		return nil
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		f.Close()
		return nil
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// WriteHeap writes an up-to-date heap profile to path (no-op on "").
func WriteHeap(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final live set before snapshotting
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
	}
}
