// Package schema models relational database schemas: tables, attributes,
// primary keys and foreign-key relationships. It is the structural foundation
// shared by the SQL parser, the cost model, the execution engine and the
// partitioning design space.
//
// A Schema is immutable after Validate; all higher layers address tables and
// attributes by name and rely on the deterministic ordering of Tables and
// ForeignKeys for stable feature encodings.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute describes a single column of a table.
type Attribute struct {
	// Name is the column name, unique within its table.
	Name string
	// Width is the storage width of the column in bytes. It feeds the
	// byte-level accounting of the cost model and the execution engine.
	Width int
}

// Table describes a relation: its columns and primary key. Row counts and
// value distributions live in package stats, not here, so that the same
// schema can be instantiated at different scale factors.
type Table struct {
	// Name is the table name, unique within its schema.
	Name string
	// Attributes lists the columns in definition order.
	Attributes []Attribute
	// PrimaryKey names the primary-key columns (a subset of Attributes).
	PrimaryKey []string
	// CompoundKeys lists additional multi-attribute candidate partitioning
	// keys beyond the single-attribute candidates derived from joins, e.g.
	// (warehouse-id, district-id) in TPC-CH to mitigate skew.
	CompoundKeys [][]string
}

// ForeignKey declares that FromTable.FromAttr references ToTable.ToAttr.
// Foreign keys seed the set of co-partitioning edges of the design space.
type ForeignKey struct {
	FromTable string
	FromAttr  string
	ToTable   string
	ToAttr    string
}

// String renders the foreign key as "from.attr -> to.attr".
func (fk ForeignKey) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", fk.FromTable, fk.FromAttr, fk.ToTable, fk.ToAttr)
}

// Schema is a named collection of tables and foreign keys.
type Schema struct {
	// Name identifies the schema (e.g. "ssb", "tpcds", "tpcch").
	Name string
	// Tables lists the tables in a fixed, deterministic order.
	Tables []*Table
	// ForeignKeys lists the declared foreign-key relationships.
	ForeignKeys []ForeignKey

	byName map[string]*Table
}

// New constructs a schema and validates it. It panics on invalid input,
// since schemas are static program data defined in package benchmarks.
func New(name string, tables []*Table, fks []ForeignKey) *Schema {
	s := &Schema{Name: name, Tables: tables, ForeignKeys: fks}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("schema %q: %v", name, err))
	}
	return s
}

// Validate checks internal consistency: unique table and attribute names,
// primary keys and compound keys referencing existing attributes, and
// foreign keys referencing existing tables and attributes.
func (s *Schema) Validate() error {
	s.byName = make(map[string]*Table, len(s.Tables))
	for _, t := range s.Tables {
		if t.Name == "" {
			return fmt.Errorf("table with empty name")
		}
		if _, dup := s.byName[t.Name]; dup {
			return fmt.Errorf("duplicate table %q", t.Name)
		}
		s.byName[t.Name] = t

		seen := make(map[string]bool, len(t.Attributes))
		for _, a := range t.Attributes {
			if a.Name == "" {
				return fmt.Errorf("table %q: attribute with empty name", t.Name)
			}
			if seen[a.Name] {
				return fmt.Errorf("table %q: duplicate attribute %q", t.Name, a.Name)
			}
			if a.Width <= 0 {
				return fmt.Errorf("table %q: attribute %q has non-positive width", t.Name, a.Name)
			}
			seen[a.Name] = true
		}
		for _, pk := range t.PrimaryKey {
			if !seen[pk] {
				return fmt.Errorf("table %q: primary key column %q not an attribute", t.Name, pk)
			}
		}
		for _, ck := range t.CompoundKeys {
			if len(ck) < 2 {
				return fmt.Errorf("table %q: compound key must have >= 2 attributes", t.Name)
			}
			for _, a := range ck {
				if !seen[a] {
					return fmt.Errorf("table %q: compound key column %q not an attribute", t.Name, a)
				}
			}
		}
	}
	for _, fk := range s.ForeignKeys {
		from := s.byName[fk.FromTable]
		to := s.byName[fk.ToTable]
		if from == nil {
			return fmt.Errorf("foreign key %v: unknown table %q", fk, fk.FromTable)
		}
		if to == nil {
			return fmt.Errorf("foreign key %v: unknown table %q", fk, fk.ToTable)
		}
		if !from.HasAttribute(fk.FromAttr) {
			return fmt.Errorf("foreign key %v: unknown attribute %q.%q", fk, fk.FromTable, fk.FromAttr)
		}
		if !to.HasAttribute(fk.ToAttr) {
			return fmt.Errorf("foreign key %v: unknown attribute %q.%q", fk, fk.ToTable, fk.ToAttr)
		}
	}
	return nil
}

// Table returns the table with the given name, or nil if absent.
func (s *Schema) Table(name string) *Table {
	if s.byName == nil {
		s.Validate()
	}
	return s.byName[name]
}

// MustTable returns the table with the given name and panics if absent.
func (s *Schema) MustTable(name string) *Table {
	t := s.Table(name)
	if t == nil {
		panic(fmt.Sprintf("schema %q: no table %q", s.Name, name))
	}
	return t
}

// TableIndex returns the position of the named table in Tables, or -1.
func (s *Schema) TableIndex(name string) int {
	for i, t := range s.Tables {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// TableNames returns the table names in schema order.
func (s *Schema) TableNames() []string {
	names := make([]string, len(s.Tables))
	for i, t := range s.Tables {
		names[i] = t.Name
	}
	return names
}

// HasAttribute reports whether the table has a column with the given name.
func (t *Table) HasAttribute(name string) bool {
	return t.AttributeIndex(name) >= 0
}

// AttributeIndex returns the position of the named column, or -1.
func (t *Table) AttributeIndex(name string) int {
	for i, a := range t.Attributes {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Attribute returns the named column, or nil if absent.
func (t *Table) Attribute(name string) *Attribute {
	if i := t.AttributeIndex(name); i >= 0 {
		return &t.Attributes[i]
	}
	return nil
}

// AttributeNames returns the column names in definition order.
func (t *Table) AttributeNames() []string {
	names := make([]string, len(t.Attributes))
	for i, a := range t.Attributes {
		names[i] = a.Name
	}
	return names
}

// RowWidth returns the total width in bytes of one row.
func (t *Table) RowWidth() int {
	w := 0
	for _, a := range t.Attributes {
		w += a.Width
	}
	return w
}

// JoinEdge is an undirected join relationship between two table attributes,
// extracted from foreign keys and/or workload join predicates. Edges are
// canonicalized so that Table1 < Table2 (or Table1 == Table2 and
// Attr1 <= Attr2), which makes deduplication and feature indices stable.
type JoinEdge struct {
	Table1 string
	Attr1  string
	Table2 string
	Attr2  string
}

// NewJoinEdge builds a canonicalized join edge.
func NewJoinEdge(t1, a1, t2, a2 string) JoinEdge {
	if t1 > t2 || (t1 == t2 && a1 > a2) {
		t1, a1, t2, a2 = t2, a2, t1, a1
	}
	return JoinEdge{Table1: t1, Attr1: a1, Table2: t2, Attr2: a2}
}

// String renders the edge as "t1.a1 = t2.a2".
func (e JoinEdge) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", e.Table1, e.Attr1, e.Table2, e.Attr2)
}

// Touches reports whether the edge is incident to the named table.
func (e JoinEdge) Touches(table string) bool {
	return e.Table1 == table || e.Table2 == table
}

// AttrFor returns the edge's attribute on the given table's side and whether
// the table is an endpoint. For (rare) self-join edges it returns Attr1.
func (e JoinEdge) AttrFor(table string) (string, bool) {
	switch table {
	case e.Table1:
		return e.Attr1, true
	case e.Table2:
		return e.Attr2, true
	}
	return "", false
}

// Other returns the opposite endpoint (table, attr) relative to the given
// table, and whether the table is an endpoint.
func (e JoinEdge) Other(table string) (string, string, bool) {
	switch table {
	case e.Table1:
		return e.Table2, e.Attr2, true
	case e.Table2:
		return e.Table1, e.Attr1, true
	}
	return "", "", false
}

// ForeignKeyEdges returns the deduplicated, canonicalized join edges implied
// by the schema's foreign keys, in deterministic order.
func (s *Schema) ForeignKeyEdges() []JoinEdge {
	set := make(map[JoinEdge]bool)
	for _, fk := range s.ForeignKeys {
		set[NewJoinEdge(fk.FromTable, fk.FromAttr, fk.ToTable, fk.ToAttr)] = true
	}
	return sortedEdges(set)
}

func sortedEdges(set map[JoinEdge]bool) []JoinEdge {
	edges := make([]JoinEdge, 0, len(set))
	for e := range set {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Table1 != b.Table1 {
			return a.Table1 < b.Table1
		}
		if a.Attr1 != b.Attr1 {
			return a.Attr1 < b.Attr1
		}
		if a.Table2 != b.Table2 {
			return a.Table2 < b.Table2
		}
		return a.Attr2 < b.Attr2
	})
	return edges
}

// MergeEdges unions several edge sets into a deterministic, deduplicated
// slice. It is used to combine foreign-key edges with join edges observed in
// the workload.
func MergeEdges(sets ...[]JoinEdge) []JoinEdge {
	m := make(map[JoinEdge]bool)
	for _, set := range sets {
		for _, e := range set {
			m[e] = true
		}
	}
	return sortedEdges(m)
}

// String renders the schema as a compact textual summary.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s (%d tables, %d foreign keys)\n", s.Name, len(s.Tables), len(s.ForeignKeys))
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "  %s(%s) pk=%v\n", t.Name, strings.Join(t.AttributeNames(), ", "), t.PrimaryKey)
	}
	return b.String()
}
