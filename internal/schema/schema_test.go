package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return New("test",
		[]*Table{
			{
				Name: "lineorder",
				Attributes: []Attribute{
					{Name: "lo_key", Width: 8},
					{Name: "lo_custkey", Width: 8},
					{Name: "lo_partkey", Width: 8},
					{Name: "lo_revenue", Width: 8},
				},
				PrimaryKey: []string{"lo_key"},
			},
			{
				Name: "customer",
				Attributes: []Attribute{
					{Name: "c_custkey", Width: 8},
					{Name: "c_region", Width: 16},
				},
				PrimaryKey: []string{"c_custkey"},
			},
			{
				Name: "part",
				Attributes: []Attribute{
					{Name: "p_partkey", Width: 8},
					{Name: "p_brand", Width: 16},
				},
				PrimaryKey:   []string{"p_partkey"},
				CompoundKeys: [][]string{{"p_partkey", "p_brand"}},
			},
		},
		[]ForeignKey{
			{FromTable: "lineorder", FromAttr: "lo_custkey", ToTable: "customer", ToAttr: "c_custkey"},
			{FromTable: "lineorder", FromAttr: "lo_partkey", ToTable: "part", ToAttr: "p_partkey"},
		},
	)
}

func TestValidateAccepts(t *testing.T) {
	s := testSchema(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		tables []*Table
		fks    []ForeignKey
		want   string
	}{
		{
			name:   "duplicate table",
			tables: []*Table{{Name: "t", Attributes: []Attribute{{Name: "a", Width: 8}}}, {Name: "t", Attributes: []Attribute{{Name: "a", Width: 8}}}},
			want:   "duplicate table",
		},
		{
			name:   "duplicate attribute",
			tables: []*Table{{Name: "t", Attributes: []Attribute{{Name: "a", Width: 8}, {Name: "a", Width: 8}}}},
			want:   "duplicate attribute",
		},
		{
			name:   "zero width",
			tables: []*Table{{Name: "t", Attributes: []Attribute{{Name: "a", Width: 0}}}},
			want:   "non-positive width",
		},
		{
			name:   "bad primary key",
			tables: []*Table{{Name: "t", Attributes: []Attribute{{Name: "a", Width: 8}}, PrimaryKey: []string{"b"}}},
			want:   "primary key",
		},
		{
			name:   "short compound key",
			tables: []*Table{{Name: "t", Attributes: []Attribute{{Name: "a", Width: 8}}, CompoundKeys: [][]string{{"a"}}}},
			want:   "compound key",
		},
		{
			name:   "fk unknown table",
			tables: []*Table{{Name: "t", Attributes: []Attribute{{Name: "a", Width: 8}}}},
			fks:    []ForeignKey{{FromTable: "x", FromAttr: "a", ToTable: "t", ToAttr: "a"}},
			want:   "unknown table",
		},
		{
			name:   "fk unknown attribute",
			tables: []*Table{{Name: "t", Attributes: []Attribute{{Name: "a", Width: 8}}}, {Name: "u", Attributes: []Attribute{{Name: "b", Width: 8}}}},
			fks:    []ForeignKey{{FromTable: "t", FromAttr: "z", ToTable: "u", ToAttr: "b"}},
			want:   "unknown attribute",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Schema{Name: "bad", Tables: tc.tables, ForeignKeys: tc.fks}
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted invalid schema")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New did not panic on invalid schema")
		}
	}()
	New("bad", []*Table{{Name: ""}}, nil)
}

func TestTableLookup(t *testing.T) {
	s := testSchema(t)
	if s.Table("customer") == nil {
		t.Fatalf("Table(customer) = nil")
	}
	if s.Table("nope") != nil {
		t.Fatalf("Table(nope) != nil")
	}
	if got := s.TableIndex("part"); got != 2 {
		t.Fatalf("TableIndex(part) = %d, want 2", got)
	}
	if got := s.TableIndex("nope"); got != -1 {
		t.Fatalf("TableIndex(nope) = %d, want -1", got)
	}
	if got := s.TableNames(); len(got) != 3 || got[0] != "lineorder" {
		t.Fatalf("TableNames = %v", got)
	}
}

func TestMustTablePanics(t *testing.T) {
	s := testSchema(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("MustTable did not panic for missing table")
		}
	}()
	s.MustTable("missing")
}

func TestAttributeHelpers(t *testing.T) {
	s := testSchema(t)
	lo := s.MustTable("lineorder")
	if !lo.HasAttribute("lo_custkey") {
		t.Fatalf("HasAttribute(lo_custkey) = false")
	}
	if lo.HasAttribute("nope") {
		t.Fatalf("HasAttribute(nope) = true")
	}
	if got := lo.AttributeIndex("lo_partkey"); got != 2 {
		t.Fatalf("AttributeIndex = %d, want 2", got)
	}
	if a := lo.Attribute("lo_revenue"); a == nil || a.Width != 8 {
		t.Fatalf("Attribute(lo_revenue) = %+v", a)
	}
	if lo.Attribute("nope") != nil {
		t.Fatalf("Attribute(nope) != nil")
	}
	if got := lo.RowWidth(); got != 32 {
		t.Fatalf("RowWidth = %d, want 32", got)
	}
	cust := s.MustTable("customer")
	if got := cust.RowWidth(); got != 24 {
		t.Fatalf("customer RowWidth = %d, want 24", got)
	}
}

func TestJoinEdgeCanonicalization(t *testing.T) {
	e1 := NewJoinEdge("b", "x", "a", "y")
	e2 := NewJoinEdge("a", "y", "b", "x")
	if e1 != e2 {
		t.Fatalf("canonicalization mismatch: %v vs %v", e1, e2)
	}
	if e1.Table1 != "a" {
		t.Fatalf("Table1 = %q, want a", e1.Table1)
	}
	// Self-join edge ordering by attribute.
	e3 := NewJoinEdge("t", "z", "t", "a")
	if e3.Attr1 != "a" || e3.Attr2 != "z" {
		t.Fatalf("self-join canonicalization = %v", e3)
	}
}

func TestJoinEdgeCanonicalizationProperty(t *testing.T) {
	// Property: NewJoinEdge is symmetric in its endpoint arguments.
	f := func(t1, a1, t2, a2 string) bool {
		return NewJoinEdge(t1, a1, t2, a2) == NewJoinEdge(t2, a2, t1, a1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinEdgeAccessors(t *testing.T) {
	e := NewJoinEdge("customer", "c_custkey", "lineorder", "lo_custkey")
	if !e.Touches("customer") || !e.Touches("lineorder") || e.Touches("part") {
		t.Fatalf("Touches misbehaves: %v", e)
	}
	a, ok := e.AttrFor("lineorder")
	if !ok || a != "lo_custkey" {
		t.Fatalf("AttrFor(lineorder) = %q, %v", a, ok)
	}
	if _, ok := e.AttrFor("part"); ok {
		t.Fatalf("AttrFor(part) reported ok")
	}
	ot, oa, ok := e.Other("customer")
	if !ok || ot != "lineorder" || oa != "lo_custkey" {
		t.Fatalf("Other(customer) = %q.%q, %v", ot, oa, ok)
	}
	if _, _, ok := e.Other("part"); ok {
		t.Fatalf("Other(part) reported ok")
	}
	if got := e.String(); got != "customer.c_custkey = lineorder.lo_custkey" {
		t.Fatalf("String = %q", got)
	}
}

func TestForeignKeyEdges(t *testing.T) {
	s := testSchema(t)
	edges := s.ForeignKeyEdges()
	if len(edges) != 2 {
		t.Fatalf("ForeignKeyEdges = %v, want 2 edges", edges)
	}
	// Canonical order: customer edge before part edge (customer < lineorder < part).
	want0 := NewJoinEdge("lineorder", "lo_custkey", "customer", "c_custkey")
	want1 := NewJoinEdge("lineorder", "lo_partkey", "part", "p_partkey")
	if edges[0] != want0 || edges[1] != want1 {
		t.Fatalf("ForeignKeyEdges order = %v", edges)
	}
}

func TestForeignKeyEdgesDeduplicate(t *testing.T) {
	s := New("dup",
		[]*Table{
			{Name: "a", Attributes: []Attribute{{Name: "x", Width: 8}}},
			{Name: "b", Attributes: []Attribute{{Name: "y", Width: 8}}},
		},
		[]ForeignKey{
			{FromTable: "a", FromAttr: "x", ToTable: "b", ToAttr: "y"},
			{FromTable: "b", FromAttr: "y", ToTable: "a", ToAttr: "x"},
		},
	)
	if got := s.ForeignKeyEdges(); len(got) != 1 {
		t.Fatalf("expected dedup to 1 edge, got %v", got)
	}
}

func TestMergeEdges(t *testing.T) {
	a := []JoinEdge{NewJoinEdge("t", "a", "u", "b")}
	b := []JoinEdge{NewJoinEdge("u", "b", "t", "a"), NewJoinEdge("t", "a", "v", "c")}
	got := MergeEdges(a, b)
	if len(got) != 2 {
		t.Fatalf("MergeEdges = %v, want 2 edges", got)
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	str := s.String()
	for _, want := range []string{"schema test", "lineorder", "customer", "part"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() missing %q: %s", want, str)
		}
	}
}
