package baselines

import (
	"partadvisor/internal/partition"
	"partadvisor/internal/sqlparse"
	"partadvisor/internal/workload"
)

// Estimator exposes DBMS-internal "what-if" cost estimates for hypothetical
// partitionings. *exec.Engine satisfies it; the Memory flavor returns
// ok == false (System-X does not expose estimates, §7.1).
type Estimator interface {
	EstimateCost(st *partition.State, g *sqlparse.Graph) (float64, bool)
}

// MinOptimizer implements the classical automated partitioning designers
// [4, 24, 31]: it enumerates candidate designs (steepest-ascent hill
// climbing over the same action space the DRL agent uses, restarted from
// the heuristic seeds) and returns the design minimizing the optimizer's
// estimated workload cost. ok is false when the engine exposes no
// estimates.
//
// Because the estimates carry the join-count-proportional error of real
// optimizers, minimizing them suffers the winner's curse on complex schemas
// — the effect behind Fig. 3c of the paper.
func MinOptimizer(sp *partition.Space, wl *workload.Workload, freq workload.FreqVector, est Estimator, seeds []*partition.State, maxSteps int) (*partition.State, bool) {
	cost := func(st *partition.State) (float64, bool) {
		total := 0.0
		for i, q := range wl.Queries {
			if i >= len(freq) || freq[i] == 0 {
				continue
			}
			c, ok := est.EstimateCost(st, q.Graph)
			if !ok {
				return 0, false
			}
			total += freq[i] * q.Weight * c
		}
		return total, true
	}
	if _, ok := cost(sp.InitialState()); !ok {
		return nil, false
	}

	starts := append([]*partition.State{sp.InitialState()}, seeds...)
	var best *partition.State
	bestCost := 0.0
	for _, start := range starts {
		st := start
		cur, _ := cost(st)
		for step := 0; step < maxSteps; step++ {
			improved := false
			var bestNext *partition.State
			bestNextCost := cur
			for _, a := range sp.Actions() {
				if !sp.Valid(st, a) {
					continue
				}
				next := sp.Apply(st, a)
				if c, _ := cost(next); c < bestNextCost {
					bestNextCost = c
					bestNext = next
					improved = true
				}
			}
			if !improved {
				break
			}
			st = bestNext
			cur = bestNextCost
		}
		if best == nil || cur < bestCost {
			best = st
			bestCost = cur
		}
	}
	return best, true
}
