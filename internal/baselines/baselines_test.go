package baselines

import (
	"math/rand"
	"testing"

	"partadvisor/internal/benchmarks"
	"partadvisor/internal/costmodel"
	"partadvisor/internal/exec"
	"partadvisor/internal/hardware"
	"partadvisor/internal/partition"
	"partadvisor/internal/sqlparse"
	"partadvisor/internal/workload"
)

func ssbSetup(t *testing.T) (*benchmarks.Benchmark, *partition.Space, *exec.Engine) {
	t.Helper()
	b := benchmarks.SSB()
	data := b.Generate(0.05, 1)
	e := exec.New(b.Schema, data, hardware.PostgresXLDisk(), exec.Disk)
	return b, b.Space(), e
}

func TestStarHeuristicA(t *testing.T) {
	b, sp, e := ssbSetup(t)
	st := StarHeuristicA(sp, b.Workload, e.TrueCatalog())
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Lineorder must be partitioned by the attribute joining its most
	// frequently joined dimension: date (flight 1-4 all join date).
	k, ok := st.KeyOf("lineorder")
	if !ok || k.String() != "lo_orderdate" {
		t.Fatalf("lineorder key = %v (want lo_orderdate)", k)
	}
	if _, ok := st.KeyOf("date"); !ok {
		t.Fatalf("date should be partitioned, not replicated")
	}
	// Non-chosen dimensions replicated.
	if _, ok := st.KeyOf("part"); ok {
		t.Fatalf("part should be replicated")
	}
}

func TestStarHeuristicB(t *testing.T) {
	// Full repro scale: customer (3000 rows) must outgrow the fixed-size
	// date dimension (2352 rows) to be "the largest dimension".
	b := benchmarks.SSB()
	data := b.Generate(1, 1)
	e := exec.New(b.Schema, data, hardware.PostgresXLDisk(), exec.Disk)
	sp := b.Space()
	st := StarHeuristicB(sp, b.Workload, e.TrueCatalog())
	// Customer is the largest SSB dimension.
	k, ok := st.KeyOf("lineorder")
	if !ok || k.String() != "lo_custkey" {
		t.Fatalf("lineorder key = %v (want lo_custkey)", k)
	}
	if _, ok := st.KeyOf("customer"); !ok {
		t.Fatalf("customer should be partitioned")
	}
}

func TestNormalizedHeuristics(t *testing.T) {
	b := benchmarks.TPCCH()
	data := b.Generate(0.05, 2)
	e := exec.New(b.Schema, data, hardware.PostgresXLDisk(), exec.Disk)
	sp := b.Space()

	stA := NormalizedHeuristicA(sp, e.TrueCatalog())
	if err := stA.CheckInvariants(); err != nil {
		t.Fatalf("A invariants: %v", err)
	}
	// Small tables (region, nation, warehouse) replicated; orderline large.
	if _, ok := stA.KeyOf("region"); ok {
		t.Fatalf("region should be replicated under Heuristic A")
	}
	if _, ok := stA.KeyOf("orderline"); !ok {
		t.Fatalf("orderline should stay partitioned under Heuristic A")
	}

	stB := NormalizedHeuristicB(sp, b.Workload, e.TrueCatalog())
	if err := stB.CheckInvariants(); err != nil {
		t.Fatalf("B invariants: %v", err)
	}
	active := 0
	for _, on := range stB.Edges {
		if on {
			active++
		}
	}
	if active == 0 {
		t.Fatalf("Heuristic B should co-partition at least one large pair")
	}
}

func TestMinOptimizerImprovesOverStart(t *testing.T) {
	b, sp, e := ssbSetup(t)
	freq := b.Workload.UniformFreq()
	st, ok := MinOptimizer(sp, b.Workload, freq, e, nil, 8)
	if !ok {
		t.Fatalf("estimates unavailable on disk engine")
	}
	estCost := func(s *partition.State) float64 {
		total := 0.0
		for i, q := range b.Workload.Queries {
			c, _ := e.EstimateCost(s, q.Graph)
			total += freq[i] * c
		}
		return total
	}
	if estCost(st) > estCost(sp.InitialState()) {
		t.Fatalf("MinOptimizer did not improve the estimated cost")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestMinOptimizerUnavailableOnMemoryEngine(t *testing.T) {
	b := benchmarks.SSB()
	data := b.Generate(0.05, 3)
	e := exec.New(b.Schema, data, hardware.SystemXMemory(), exec.Memory)
	_, ok := MinOptimizer(b.Space(), b.Workload, b.Workload.UniformFreq(), e, nil, 4)
	if ok {
		t.Fatalf("MinOptimizer must be unavailable without estimates")
	}
}

func TestMinOptimizerUsesSeeds(t *testing.T) {
	b, sp, e := ssbSetup(t)
	seed := StarHeuristicB(sp, b.Workload, e.TrueCatalog())
	st, ok := MinOptimizer(sp, b.Workload, b.Workload.UniformFreq(), e, []*partition.State{seed}, 4)
	if !ok || st == nil {
		t.Fatalf("MinOptimizer with seeds failed")
	}
}

// fakeEstimator counts calls and returns a fixed preference.
type fakeEstimator struct {
	calls int
	pref  string
}

func (f *fakeEstimator) EstimateCost(st *partition.State, g *sqlparse.Graph) (float64, bool) {
	f.calls++
	if _, ok := st.KeyOf(f.pref); !ok {
		return 1, true // replicated: pretend cheap
	}
	return 10, true
}

func TestMinOptimizerFollowsEstimates(t *testing.T) {
	b := benchmarks.Micro()
	sp := b.Space()
	est := &fakeEstimator{pref: "b"}
	st, ok := MinOptimizer(sp, b.Workload, b.Workload.UniformFreq(), est, nil, 6)
	if !ok {
		t.Fatalf("fake estimator rejected")
	}
	if _, partitioned := st.KeyOf("b"); partitioned {
		t.Fatalf("MinOptimizer ignored estimates preferring replication of b")
	}
	if est.calls == 0 {
		t.Fatalf("estimator never called")
	}
}

func TestLearnedCostModelPretrainsAndPredicts(t *testing.T) {
	b := benchmarks.Micro()
	sp := b.Space()
	data := b.Generate(0.2, 4)
	e := exec.New(b.Schema, data, hardware.SystemXMemory(), exec.Memory)
	cm := costmodel.New(e.TrueCatalog(), e.HW)

	m := NewLearnedCostModel(sp, b.Workload, []int{32, 16}, 1e-3, 5)
	m.PretrainOffline(cm, 400, func(rng *rand.Rand) workload.FreqVector {
		return b.Workload.SampleUniform(rng)
	})
	if m.SampleCount() != 400 {
		t.Fatalf("samples = %d", m.SampleCount())
	}
	// Prediction should correlate with the labels: a replicated-fact
	// design must predict worse than s0 after training.
	s0 := sp.InitialState()
	badIdx := sp.TableIndex("a")
	bad := sp.Apply(s0, partition.Action{Kind: partition.ActReplicate, Table: badIdx})
	freq := b.Workload.UniformFreq()
	if m.Predict(bad, freq) <= m.Predict(s0, freq) {
		t.Fatalf("model does not rank replicating the fact table as worse: %v vs %v",
			m.Predict(bad, freq), m.Predict(s0, freq))
	}
}

func TestLearnedCostModelOnlineAndSuggest(t *testing.T) {
	b := benchmarks.Micro()
	sp := b.Space()
	data := b.Generate(0.2, 6)
	e := exec.New(b.Schema, data, hardware.SystemXMemory(), exec.Memory)
	cm := costmodel.New(e.TrueCatalog(), e.HW)

	m := NewLearnedCostModel(sp, b.Workload, []int{32, 16}, 1e-3, 7)
	m.PretrainOffline(cm, 300, func(rng *rand.Rand) workload.FreqVector {
		return b.Workload.SampleUniform(rng)
	})
	measure := func(st *partition.State, freq workload.FreqVector) float64 {
		e.Deploy(st, nil)
		total := 0.0
		for i, q := range b.Workload.Queries {
			total += freq[i] * e.Run(q.Graph)
		}
		return total
	}
	n := m.TrainOnline(measure, func(rng *rand.Rand) workload.FreqVector {
		return b.Workload.SampleUniform(rng)
	}, 5, false)
	if n != 5 {
		t.Fatalf("measured %d designs", n)
	}
	st := m.Suggest(b.Workload.UniformFreq())
	if st == nil {
		t.Fatalf("Suggest returned nil")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Explore variant takes random starts but still returns valid designs.
	n = m.TrainOnline(measure, func(rng *rand.Rand) workload.FreqVector {
		return b.Workload.SampleUniform(rng)
	}, 3, true)
	if n != 3 {
		t.Fatalf("explore measured %d designs", n)
	}
}

func TestNormalizedGapHelper(t *testing.T) {
	if g := normalizedGap(1.1, 1.0); g < 0.09 || g > 0.11 {
		t.Fatalf("gap = %v", g)
	}
	if g := normalizedGap(0, 0); g != 0 {
		t.Fatalf("zero gap = %v", g)
	}
}
