// Package baselines implements the comparison approaches of the paper's
// evaluation (§7.1):
//
//   - the DBA rules of thumb: for star schemas, co-partition each fact table
//     with the most frequently joined (Heuristic a) or the largest
//     (Heuristic b) dimension table; for normalized schemas like TPC-CH,
//     replicate small tables and partition large ones by primary key
//     (Heuristic a) or greedily co-partition the largest table pairs
//     (Heuristic b);
//   - the Minimum-Optimizer advisor in the style of [4, 24, 31]: enumerate
//     candidate designs and pick the one minimizing the DBMS optimizer's
//     cost estimates;
//   - the learned neural cost model of Exp. 4, in exploitation- and
//     exploration-driven variants.
package baselines

import (
	"sort"

	"partadvisor/internal/partition"
	"partadvisor/internal/stats"
	"partadvisor/internal/workload"
)

// factRowFraction classifies a table as a fact table when it holds at least
// this fraction of the largest table's rows.
const factRowFraction = 0.2

// replicateRowFraction: Heuristic (a) for normalized schemas replicates
// tables below this fraction of the largest table.
const replicateRowFraction = 0.05

// factTables classifies tables as fact tables: large relative to the
// biggest table AND referencing other tables via foreign keys (dimension
// tables are only ever referenced, however large a fixed-size dimension may
// look at small scale).
func factTables(sp *partition.Space, cat *stats.Catalog) map[string]bool {
	var maxRows int64
	for _, ts := range sp.Tables {
		if r := cat.Rows(ts.Name); r > maxRows {
			maxRows = r
		}
	}
	references := make(map[string]bool)
	for _, fk := range sp.Schema.ForeignKeys {
		references[fk.FromTable] = true
	}
	facts := make(map[string]bool)
	for _, ts := range sp.Tables {
		if references[ts.Name] && float64(cat.Rows(ts.Name)) >= factRowFraction*float64(maxRows) {
			facts[ts.Name] = true
		}
	}
	return facts
}

// joinFrequency counts, per canonical table pair, the workload-weighted
// number of queries joining them.
func joinFrequency(wl *workload.Workload) map[[2]string]float64 {
	out := make(map[[2]string]float64)
	for _, q := range wl.Queries {
		for _, e := range q.Graph.JoinEdges() {
			out[[2]string{e.Table1, e.Table2}] += q.Weight
		}
	}
	return out
}

// applyDesign sets one table's design on a state (by key attribute list or
// replication), tolerating keys outside the space (left unchanged).
func applyDesign(sp *partition.Space, st *partition.State, table string, key partition.Key, replicate bool) *partition.State {
	ti := sp.TableIndex(table)
	if ti < 0 {
		return st
	}
	var a partition.Action
	if replicate {
		a = partition.Action{Kind: partition.ActReplicate, Table: ti}
	} else {
		ki := sp.Tables[ti].KeyIndex(key)
		if ki < 0 {
			return st
		}
		a = partition.Action{Kind: partition.ActPartition, Table: ti, Key: ki}
	}
	if !sp.Valid(st, a) {
		return st // already in the requested design
	}
	return sp.Apply(st, a)
}

// StarHeuristicA co-partitions every fact table with its most frequently
// joined dimension and replicates the remaining dimensions.
func StarHeuristicA(sp *partition.Space, wl *workload.Workload, cat *stats.Catalog) *partition.State {
	return starHeuristic(sp, wl, cat, func(dimRows int64, joinWeight float64) float64 {
		return joinWeight
	})
}

// StarHeuristicB co-partitions every fact table with the largest dimension
// it joins and replicates the remaining dimensions.
func StarHeuristicB(sp *partition.Space, wl *workload.Workload, cat *stats.Catalog) *partition.State {
	return starHeuristic(sp, wl, cat, func(dimRows int64, joinWeight float64) float64 {
		if joinWeight == 0 {
			return 0
		}
		return float64(dimRows)
	})
}

// starHeuristic shares the fact/dimension machinery; score ranks candidate
// dimensions per fact table.
func starHeuristic(sp *partition.Space, wl *workload.Workload, cat *stats.Catalog, score func(dimRows int64, joinWeight float64) float64) *partition.State {
	facts := factTables(sp, cat)
	freq := joinFrequency(wl)
	st := sp.InitialState()

	// Replicate all non-fact tables first.
	for _, ts := range sp.Tables {
		if !facts[ts.Name] {
			st = applyDesign(sp, st, ts.Name, nil, true)
		}
	}
	// For each fact table pick the best-scoring dimension edge.
	for _, ts := range sp.Tables {
		if !facts[ts.Name] {
			continue
		}
		bestScore := 0.0
		var bestEdgeIdx = -1
		for ei, e := range sp.Edges {
			other, _, ok := e.Other(ts.Name)
			if !ok || facts[other] {
				continue
			}
			pair := [2]string{e.Table1, e.Table2}
			s := score(cat.Rows(other), freq[pair])
			if s > bestScore {
				bestScore = s
				bestEdgeIdx = ei
			}
		}
		if bestEdgeIdx < 0 {
			continue // no dimension edge: stay partitioned by primary key
		}
		e := sp.Edges[bestEdgeIdx]
		factAttr, _ := e.AttrFor(ts.Name)
		dim, dimAttr, _ := e.Other(ts.Name)
		st = applyDesign(sp, st, ts.Name, partition.Key{factAttr}, false)
		st = applyDesign(sp, st, dim, partition.Key{dimAttr}, false)
	}
	return st
}

// NormalizedHeuristicA replicates small tables and partitions large tables
// by their primary key (the first candidate key).
func NormalizedHeuristicA(sp *partition.Space, cat *stats.Catalog) *partition.State {
	var maxRows int64
	for _, ts := range sp.Tables {
		if r := cat.Rows(ts.Name); r > maxRows {
			maxRows = r
		}
	}
	st := sp.InitialState()
	for _, ts := range sp.Tables {
		if float64(cat.Rows(ts.Name)) < replicateRowFraction*float64(maxRows) {
			st = applyDesign(sp, st, ts.Name, nil, true)
		}
		// Large tables stay on Keys[0] (primary key) from the initial state.
	}
	return st
}

// NormalizedHeuristicB greedily co-partitions the largest pairs of joined
// tables (by the smaller table's size) while replicating small tables.
func NormalizedHeuristicB(sp *partition.Space, wl *workload.Workload, cat *stats.Catalog) *partition.State {
	var maxRows int64
	for _, ts := range sp.Tables {
		if r := cat.Rows(ts.Name); r > maxRows {
			maxRows = r
		}
	}
	small := func(t string) bool {
		return float64(cat.Rows(t)) < replicateRowFraction*float64(maxRows)
	}
	// Rank edges between two large tables by the smaller endpoint's size.
	type cand struct {
		edge int
		size int64
	}
	var cands []cand
	for ei, e := range sp.Edges {
		if small(e.Table1) || small(e.Table2) {
			continue
		}
		s := cat.Rows(e.Table1)
		if r := cat.Rows(e.Table2); r < s {
			s = r
		}
		cands = append(cands, cand{edge: ei, size: s})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].size > cands[j].size })

	st := sp.InitialState()
	for _, c := range cands {
		a := partition.Action{Kind: partition.ActActivateEdge, Edge: c.edge}
		if sp.Valid(st, a) {
			st = sp.Apply(st, a)
		}
	}
	for _, ts := range sp.Tables {
		if small(ts.Name) {
			st = applyDesign(sp, st, ts.Name, nil, true)
		}
	}
	return st
}
