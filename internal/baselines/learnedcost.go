package baselines

import (
	"math"
	"math/rand"

	"partadvisor/internal/costmodel"
	"partadvisor/internal/nn"
	"partadvisor/internal/partition"
	"partadvisor/internal/workload"
)

// LearnedCostModel is the Exp-4 alternative to DRL: a neural network that
// predicts the (normalized) workload cost of a partitioning for a workload
// mix, combined with a classical optimization procedure (hill climbing on
// model predictions) to select designs. The paper bootstraps it offline on
// the network-centric cost model and refines it online on measured
// runtimes, in an exploitation-driven variant (each iteration starts at the
// model's current minimum) and an exploration-driven variant (each
// iteration starts at a random design).
type LearnedCostModel struct {
	sp *partition.Space
	wl *workload.Workload

	net *nn.Network
	opt nn.Optimizer
	rng *rand.Rand

	// Replayed training set.
	inputs [][]float64
	labels []float64

	// Normalizers per label source (estimates vs runtimes).
	estNorm  float64
	realNorm float64
}

// NewLearnedCostModel builds the model with the given hidden layers
// (the experiments use the paper's 128-64).
func NewLearnedCostModel(sp *partition.Space, wl *workload.Workload, hidden []int, lr float64, seed int64) *LearnedCostModel {
	rng := rand.New(rand.NewSource(seed))
	inDim := sp.StateLen() + wl.Size()
	dims := append(append([]int{inDim}, hidden...), 1)
	return &LearnedCostModel{
		sp:  sp,
		wl:  wl,
		net: nn.NewNetwork(dims, rng),
		opt: nn.NewAdam(lr),
		rng: rng,
	}
}

// encode concatenates the partitioning encoding and the frequency vector.
func (m *LearnedCostModel) encode(st *partition.State, freq workload.FreqVector) []float64 {
	in := make([]float64, m.sp.StateLen()+m.wl.Size())
	st.Encode(in[:m.sp.StateLen()])
	copy(in[m.sp.StateLen():], freq)
	return in
}

// Predict returns the model's normalized cost estimate.
func (m *LearnedCostModel) Predict(st *partition.State, freq workload.FreqVector) float64 {
	return m.net.Predict(m.encode(st, freq))[0]
}

// randomState performs a seeded random walk from s0.
func (m *LearnedCostModel) randomState(steps int) *partition.State {
	st := m.sp.InitialState()
	var buf []int
	for i := 0; i < steps; i++ {
		ai := m.sp.RandomValidAction(st, m.rng, buf)
		st = m.sp.Apply(st, m.sp.Actions()[ai])
	}
	return st
}

// addSample records one (state, freq) -> normalized cost example.
func (m *LearnedCostModel) addSample(st *partition.State, freq workload.FreqVector, normCost float64) {
	m.inputs = append(m.inputs, m.encode(st, freq))
	m.labels = append(m.labels, normCost)
}

// fit runs minibatch training epochs over the accumulated samples.
func (m *LearnedCostModel) fit(epochs, batch int) float64 {
	if len(m.inputs) == 0 {
		return 0
	}
	var loss float64
	for e := 0; e < epochs; e++ {
		for start := 0; start < len(m.inputs); start += batch {
			end := start + batch
			if end > len(m.inputs) {
				end = len(m.inputs)
			}
			rows := make([][]float64, 0, end-start)
			targets := make([][]float64, 0, end-start)
			for i := start; i < end; i++ {
				j := m.rng.Intn(len(m.inputs))
				rows = append(rows, m.inputs[j])
				targets = append(targets, []float64{m.labels[j]})
			}
			loss = m.net.TrainBatch(m.opt, nn.FromRows(rows), nn.FromRows(targets), nil)
		}
	}
	return loss
}

// PretrainOffline bootstraps the model on the network-centric cost model
// with `pairs` random workload/partitioning pairs (the paper uses 100k at
// full scale; experiments scale this down together with the DRL budget).
func (m *LearnedCostModel) PretrainOffline(cm *costmodel.Model, pairs int, sampleFreq func(*rand.Rand) workload.FreqVector) {
	s0 := m.sp.InitialState()
	m.estNorm = cm.WorkloadCost(s0, m.wl, m.wl.UniformFreq())
	if m.estNorm <= 0 {
		m.estNorm = 1
	}
	for i := 0; i < pairs; i++ {
		st := m.randomState(1 + m.rng.Intn(2*len(m.sp.Tables)))
		freq := sampleFreq(m.rng)
		m.addSample(st, freq, cm.WorkloadCost(st, m.wl, freq)/m.estNorm)
	}
	m.fit(4, 32)
}

// Minimize hill-climbs the model's prediction for the given mix, starting
// from s0 (exploit) or from a random design (explore), and returns the best
// design found.
func (m *LearnedCostModel) Minimize(freq workload.FreqVector, maxSteps int, explore bool) *partition.State {
	st := m.sp.InitialState()
	if explore {
		st = m.randomState(1 + m.rng.Intn(2*len(m.sp.Tables)))
	}
	cur := m.Predict(st, freq)
	for step := 0; step < maxSteps; step++ {
		// Score every valid neighbor in one batched forward pass instead of
		// per-neighbor Predict calls (same math per row, one matmul).
		var neighbors []*partition.State
		var rows [][]float64
		for _, a := range m.sp.Actions() {
			if !m.sp.Valid(st, a) {
				continue
			}
			next := m.sp.Apply(st, a)
			neighbors = append(neighbors, next)
			rows = append(rows, m.encode(next, freq))
		}
		if len(neighbors) == 0 {
			break
		}
		var bestNext *partition.State
		bestCost := cur
		for i, out := range m.net.PredictBatch(rows) {
			if c := out[0]; c < bestCost {
				bestCost = c
				bestNext = neighbors[i]
			}
		}
		if bestNext == nil {
			break
		}
		st = bestNext
		cur = bestCost
	}
	return st
}

// TrainOnline refines the model on measured runtimes: per iteration it
// selects a design (model minimum for the exploit variant, random for the
// explore variant), measures the workload's real cost under it, adds the
// example and retrains. measure must return the summed weighted runtime of
// the mix under the given partitioning. It returns the number of designs
// measured.
func (m *LearnedCostModel) TrainOnline(measure func(*partition.State, workload.FreqVector) float64,
	sampleFreq func(*rand.Rand) workload.FreqVector, iterations int, explore bool) int {
	s0 := m.sp.InitialState()
	if m.realNorm == 0 {
		m.realNorm = measure(s0, m.wl.UniformFreq())
		if m.realNorm <= 0 {
			m.realNorm = 1
		}
	}
	measured := 0
	for it := 0; it < iterations; it++ {
		freq := sampleFreq(m.rng)
		st := m.Minimize(freq, len(m.sp.Tables), explore)
		cost := measure(st, freq)
		m.addSample(st, freq, cost/m.realNorm)
		measured++
		m.fit(2, 32)
	}
	return measured
}

// Suggest returns the model-optimal design for a mix (paper Exp. 4's
// inference: minimize the learned cost model).
func (m *LearnedCostModel) Suggest(freq workload.FreqVector) *partition.State {
	return m.Minimize(freq, 2*len(m.sp.Tables), false)
}

// SampleCount reports the accumulated training-set size (diagnostics).
func (m *LearnedCostModel) SampleCount() int { return len(m.inputs) }

// normalizedGap is a test helper: relative prediction error on a labeled
// example.
func normalizedGap(pred, label float64) float64 {
	return math.Abs(pred-label) / math.Max(math.Abs(label), 1e-9)
}
