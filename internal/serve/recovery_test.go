package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"partadvisor/internal/core"
)

// stateConfig is testConfig plus a durable state dir with a fast
// background checkpointer, sized so -race tests accumulate several
// generations in tens of milliseconds.
func stateConfig(dir string) Config {
	cfg := testConfig()
	cfg.StateDir = dir
	cfg.CheckpointEvery = 20 * time.Millisecond
	cfg.CheckpointKeep = 3
	return cfg
}

func newStateServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := NewServer(stateConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return s
}

// waitGenerations polls a tenant's checkpoint directory until at least n
// generations exist.
func waitGenerations(t *testing.T, dir string, n int) []generationFile {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		gens, err := listGenerations(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(gens) >= n {
			return gens
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant never wrote %d checkpoint generations (have %d)", n, len(gens))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func submitOne(t *testing.T, s *Server, tn *Tenant) {
	t.Helper()
	wait, err := s.SubmitBatch(context.Background(), tn, nil, 1, 0, 1, 1)
	if err != nil {
		if IsShed(err) {
			return
		}
		t.Fatalf("submit: %v", err)
	}
	if _, err := wait(); err != nil && !errors.Is(err, ErrCancelled) {
		t.Fatalf("wait: %v", err)
	}
}

// TestRegistryPersistsAcrossCrash: create tenants, let the background
// checkpointer run, Halt (the in-process kill -9), and recover into a
// new server — every tenant must come back from the manifest with its
// checkpointed training state, and traffic must flow again.
func TestRegistryPersistsAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	s := newStateServer(t, dir)
	for _, id := range []string{"t1", "t2"} {
		if _, err := s.CreateTenant(fastSpec(id)); err != nil {
			t.Fatal(err)
		}
	}
	t1, _ := s.Tenant("t1")
	submitOne(t, s, t1)
	waitGenerations(t, t1.ckptDir, 2)
	wantEpisodes := 0
	if gens, err := listGenerations(t1.ckptDir); err == nil {
		if ck, err := core.LoadCheckpoint(gens[0].Path); err == nil {
			wantEpisodes = ck.EpisodesTrained
		}
	}
	s.Halt()

	s2 := newStateServer(t, dir)
	defer mustShutdown(t, s2)
	if s2.Ready() {
		t.Fatal("StateDir server must start not-ready")
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	s2.MarkReady()
	if len(rep.Tenants) != 2 {
		t.Fatalf("recovered %d tenants, want 2: %+v", len(rep.Tenants), rep.Tenants)
	}
	for _, tr := range rep.Tenants {
		if tr.Err != "" {
			t.Fatalf("tenant %s recovery failed: %s", tr.ID, tr.Err)
		}
		if tr.FreshBootstrap || tr.RestoredGen < 0 {
			t.Fatalf("tenant %s fell back to fresh bootstrap with intact checkpoints: %+v", tr.ID, tr)
		}
	}
	rt1, ok := s2.Tenant("t1")
	if !ok {
		t.Fatal("t1 missing after recovery")
	}
	if rt1.Spec != t1.Spec {
		t.Fatalf("recovered spec drifted: %+v vs %+v", rt1.Spec, t1.Spec)
	}
	if got := rt1.adv.EpisodesTrained; got < wantEpisodes {
		t.Fatalf("restored advisor has %d episodes, checkpoint held %d", got, wantEpisodes)
	}
	if st := rt1.Stats(); st.RestoredGeneration < 0 {
		t.Fatalf("stats restored_generation = %d, want >= 0", st.RestoredGeneration)
	}
	submitOne(t, s2, rt1)
}

// TestRecoveryCorruptionFallback: a torn newest generation (truncated,
// plus stray temp debris) must be skipped and the previous generation
// restored, and new generation numbers must stay monotonic past the
// corrupt file.
func TestRecoveryCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	s := newStateServer(t, dir)
	if _, err := s.CreateTenant(fastSpec("t1")); err != nil {
		t.Fatal(err)
	}
	t1, _ := s.Tenant("t1")
	gens := waitGenerations(t, t1.ckptDir, 2)
	s.Halt()

	gens, err := listGenerations(t1.ckptDir)
	if err != nil || len(gens) < 2 {
		t.Fatalf("need >= 2 generations after halt, have %d (%v)", len(gens), err)
	}
	newest, second := gens[0], gens[1]
	// Truncate the newest generation to half — a torn write — and drop a
	// stray temp file like a crash mid-checkpoint leaves behind.
	fi, err := os.Stat(newest.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest.Path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(t1.ckptDir, "gen-99999999.ckpt.tmp123")
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newStateServer(t, dir)
	defer mustShutdown(t, s2)
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	s2.MarkReady()
	tr := rep.Tenants[0]
	if tr.CorruptSkipped != 1 {
		t.Fatalf("corrupt_skipped = %d, want 1 (%+v)", tr.CorruptSkipped, tr)
	}
	if tr.RestoredGen != int64(second.Gen) {
		t.Fatalf("restored generation %d, want fallback to %d", tr.RestoredGen, second.Gen)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file not swept: %v", err)
	}
	rt1, _ := s2.Tenant("t1")
	if got := rt1.nextGen.Load(); got != newest.Gen+1 {
		t.Fatalf("nextGen = %d, want %d (monotonic past the corrupt newest)", got, newest.Gen+1)
	}
}

// TestRecoveryAllCorruptFreshBootstrap: when every generation is
// damaged the tenant still comes back — from its deterministic
// bootstrap — and the report says so instead of failing recovery.
func TestRecoveryAllCorruptFreshBootstrap(t *testing.T) {
	dir := t.TempDir()
	s := newStateServer(t, dir)
	if _, err := s.CreateTenant(fastSpec("t1")); err != nil {
		t.Fatal(err)
	}
	t1, _ := s.Tenant("t1")
	waitGenerations(t, t1.ckptDir, 1)
	s.Halt()

	gens, _ := listGenerations(t1.ckptDir)
	for _, g := range gens {
		if err := os.WriteFile(g.Path, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := newStateServer(t, dir)
	defer mustShutdown(t, s2)
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	s2.MarkReady()
	tr := rep.Tenants[0]
	if !tr.FreshBootstrap || tr.RestoredGen != -1 {
		t.Fatalf("want fresh bootstrap, got %+v", tr)
	}
	if tr.CorruptSkipped != len(gens) {
		t.Fatalf("corrupt_skipped = %d, want %d", tr.CorruptSkipped, len(gens))
	}
	rt1, ok := s2.Tenant("t1")
	if !ok {
		t.Fatal("t1 missing after all-corrupt recovery")
	}
	submitOne(t, s2, rt1)
}

// TestManifestRenameInterrupted: temp debris from a manifest replacement
// that crashed before its rename must be swept, with the previous
// manifest staying authoritative. A manifest damaged in place, however,
// must fail loudly.
func TestManifestRenameInterrupted(t *testing.T) {
	dir := t.TempDir()
	s := newStateServer(t, dir)
	for _, id := range []string{"t1", "t2"} {
		if _, err := s.CreateTenant(fastSpec(id)); err != nil {
			t.Fatal(err)
		}
	}
	s.Halt()

	// Crash-simulated replacement: the temp file was written (with
	// whatever bytes) but never renamed over manifest.json.
	stray := filepath.Join(dir, "manifest.json.tmp123")
	if err := os.WriteFile(stray, []byte("half a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newStateServer(t, dir)
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("previous manifest not recovered: %d tenants", len(rep.Tenants))
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("manifest temp debris not swept: %v", err)
	}
	s2.Halt()

	// In-place damage: flip a byte inside the committed manifest. The
	// checksum header must reject it at open.
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.LastIndexByte(data, '}')
	data[idx] = '{'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(stateConfig(dir)); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("corrupt manifest: want ErrCorruptManifest, got %v", err)
	}
}

// TestRecoverySweepsOrphanCheckpointDir: a crash between the manifest
// delete and the checkpoint-dir removal leaves orphan generations;
// recovery must sweep them rather than resurrect the tenant.
func TestRecoverySweepsOrphanCheckpointDir(t *testing.T) {
	dir := t.TempDir()
	s := newStateServer(t, dir)
	if _, err := s.CreateTenant(fastSpec("t1")); err != nil {
		t.Fatal(err)
	}
	s.Halt()

	orphan := filepath.Join(dir, ckptSubdir, "ghost")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(generationPath(orphan, 0), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newStateServer(t, dir)
	defer mustShutdown(t, s2)
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	s2.MarkReady()
	if len(rep.Tenants) != 1 || rep.Tenants[0].ID != "t1" {
		t.Fatalf("orphan dir resurrected a tenant: %+v", rep.Tenants)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan checkpoint dir not swept: %v", err)
	}
}

// TestConcurrentCheckpointerTrafficDelete exercises the recovery-path
// data races under -race: background checkpointers writing generations
// while batch traffic flows and one tenant is deleted mid-run. The
// manifest must end up reflecting the deletion and the deleted tenant's
// checkpoint directory must be gone.
func TestConcurrentCheckpointerTrafficDelete(t *testing.T) {
	dir := t.TempDir()
	cfg := stateConfig(dir)
	cfg.CheckpointEvery = 5 * time.Millisecond
	cfg.AdviseEvery = 10 * time.Millisecond
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer mustShutdown(t, s)
	for _, id := range []string{"t1", "t2"} {
		if _, err := s.CreateTenant(fastSpec(id)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stopAt := time.Now().Add(300 * time.Millisecond)
	for _, id := range []string{"t1", "t2"} {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				for time.Now().Before(stopAt) {
					tn, ok := s.Tenant(id)
					if !ok {
						return
					}
					wait, err := s.SubmitBatch(context.Background(), tn, nil, 1, 0, 1, 1)
					if err != nil {
						continue
					}
					wait()
				}
			}(id)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if err := s.DeleteTenant("t2"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	specs := s.reg.list()
	if len(specs) != 1 || specs[0].ID != "t1" {
		t.Fatalf("manifest after delete: %+v, want just t1", specs)
	}
	if _, err := os.Stat(filepath.Join(dir, ckptSubdir, "t2")); !os.IsNotExist(err) {
		t.Fatalf("deleted tenant's checkpoint dir survives: %v", err)
	}
}

// TestReadyzGate: with StateDir the HTTP request paths answer
// 503 + Retry-After until MarkReady, while healthz stays 200 (liveness
// is not readiness); /readyz flips 503 → 200 with the recovery report.
func TestReadyzGate(t *testing.T) {
	dir := t.TempDir()
	s := newStateServer(t, dir)
	defer mustShutdown(t, s)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	drain := func(resp *http.Response) {
		resp.Body.Close()
	}

	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before recovery: %d, want 503", resp.StatusCode)
	} else {
		drain(resp)
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz must stay liveness-only 200, got %d", resp.StatusCode)
	} else {
		drain(resp)
	}
	body, _ := json.Marshal(fastSpec("t1"))
	resp, err := http.Post(hs.URL+"/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create before ready: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("not-ready 503 must carry Retry-After")
	}
	drain(resp)

	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	s.MarkReady()

	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after MarkReady: %d, want 200", resp.StatusCode)
	} else {
		var rr struct {
			Status   string          `json:"status"`
			Recovery *RecoveryReport `json:"recovery"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		drain(resp)
		if rr.Status != "ready" || rr.Recovery == nil {
			t.Fatalf("readyz payload: %+v", rr)
		}
	}
	resp, err = http.Post(hs.URL+"/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after ready: %d, want 201", resp.StatusCode)
	}
	drain(resp)
}

// TestShutdownWritesFinalGeneration: a graceful shutdown appends one
// last verified generation per tenant, so a clean restart resumes from
// the very last episode boundary, not the last background interval.
func TestShutdownWritesFinalGeneration(t *testing.T) {
	dir := t.TempDir()
	s := newStateServer(t, dir)
	if _, err := s.CreateTenant(fastSpec("t1")); err != nil {
		t.Fatal(err)
	}
	rep := mustShutdown(t, s)
	var genPath string
	for _, p := range rep.Checkpoints {
		if strings.Contains(p, ckptSubdir) && strings.Contains(filepath.Base(p), "gen-") {
			genPath = p
		}
	}
	if genPath == "" {
		t.Fatalf("no final generation in shutdown report: %v", rep.Checkpoints)
	}
	ck, err := core.LoadCheckpoint(genPath)
	if err != nil {
		t.Fatalf("final generation does not verify: %v", err)
	}
	if ck.Seed != 1 {
		t.Fatalf("final generation seed %d, want 1", ck.Seed)
	}
}
