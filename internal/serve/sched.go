package serve

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// task states. A task moves queued → running (claimed by a worker) or
// queued → cancelled (its deadline expired / its submitter gave up while
// it was still waiting). The transitions are CAS-guarded so exactly one
// side wins.
const (
	taskQueued int32 = iota
	taskRunning
	taskCancelled
)

// task is one admitted unit of work waiting for a worker slot.
type task struct {
	tq    *tenantQueue
	state atomic.Int32
	// cost is the fair-share charge of the task (the server uses the
	// batch's query count; 0 defaults to 1).
	cost float64
	// run executes the work; it is invoked by exactly one worker after a
	// successful queued→running claim and must honor ctx itself.
	run func()
	// cancelled is closed exactly once, by whichever side wins the
	// queued→cancelled CAS. The scheduler cancels queued tasks itself
	// (removeTenant, drain deadline); without this signal a submitter
	// whose context never fires — or whose own CancelQueued loses the
	// race to the scheduler's — would wait forever for a run() that is
	// never going to happen.
	cancelled chan struct{}
}

func newTask(cost float64, run func()) *task {
	return &task{cost: cost, run: run, cancelled: make(chan struct{})}
}

// CancelQueued tries to withdraw the task before a worker claims it.
// It reports true when the task was still queued — the work will never
// start, so the submitter may answer immediately. False means the task
// is past queued: either a worker claimed it (the submitter must wait
// for the result; the propagated context makes that prompt) or another
// canceller won, which the t.cancelled close announces.
func (t *task) CancelQueued() bool {
	if t.state.CompareAndSwap(taskQueued, taskCancelled) {
		close(t.cancelled)
		return true
	}
	return false
}

// tenantQueue is one tenant's scheduling state inside the scheduler.
type tenantQueue struct {
	id     string
	weight float64
	q      []*task
	// vtime is the tenant's virtual time: it advances by cost/weight per
	// dispatched task, and dispatch always picks the backlogged tenant
	// with the smallest vtime (ties broken by id for determinism).
	vtime    float64
	inflight int
}

// scheduler implements bounded admission plus weighted-fair dispatch over
// a fixed worker pool.
type scheduler struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	queued  int // total queued across tenants (counts cancelled-but-unswept)
	closed  bool
	stopped bool
	wg      sync.WaitGroup

	// rate is a coarse completions-per-second meter (ring of per-second
	// buckets) used to compute honest Retry-After hints.
	rateBuckets [rateWindow + 1]int64
	rateSecs    [rateWindow + 1]int64

	// counters for /statz.
	dispatched atomic.Int64
	completed  atomic.Int64
	cancelled  atomic.Int64
}

// rateWindow is how many whole seconds of completions feed the
// Retry-After estimate.
const rateWindow = 4

func newScheduler(cfg Config) *scheduler {
	s := &scheduler{cfg: cfg, tenants: make(map[string]*tenantQueue)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// start launches the worker pool.
func (s *scheduler) start() {
	s.wg.Add(s.cfg.MaxConcurrent)
	for i := 0; i < s.cfg.MaxConcurrent; i++ {
		go s.worker()
	}
}

// addTenant registers a tenant's queue. Weight <= 0 defaults to 1.
func (s *scheduler) addTenant(id string, weight float64) *tenantQueue {
	if weight <= 0 || math.IsNaN(weight) {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := &tenantQueue{id: id, weight: weight}
	s.tenants[id] = tq
	return tq
}

// removeTenant deregisters a tenant and cancels everything still queued
// for it. In-flight work is unaffected (the worker holds the task).
func (s *scheduler) removeTenant(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq := s.tenants[id]
	if tq == nil {
		return
	}
	for _, t := range tq.q {
		if t.CancelQueued() {
			s.cancelled.Add(1)
		}
		s.queued--
	}
	tq.q = nil
	delete(s.tenants, id)
	s.cond.Broadcast()
}

// submit admits a task into the tenant's queue or sheds it. The returned
// error is nil (admitted), ErrClosed, ErrUnknownTenant,
// ErrGlobalQueueFull or ErrTenantQueueFull.
func (s *scheduler) submit(tq *tenantQueue, t *task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.tenants[tq.id] != tq {
		// The tenant was removed (or replaced) between the caller's lookup
		// and this submit: removeTenant drained this queue under the same
		// lock, so admitting now would strand the task — next() only scans
		// registered queues — and permanently inflate s.queued.
		return ErrUnknownTenant
	}
	if s.queued >= s.cfg.MaxGlobalQueue {
		return ErrGlobalQueueFull
	}
	if len(tq.q) >= s.cfg.MaxTenantQueue {
		return ErrTenantQueueFull
	}
	if len(tq.q) == 0 {
		// The tenant was idle: lift its virtual time to the minimum of the
		// currently backlogged tenants so it re-enters the fair race at
		// "now" instead of spending banked idle time starving everyone.
		if v, ok := s.minBackloggedVtime(); ok && tq.vtime < v {
			tq.vtime = v
		}
	}
	t.tq = tq
	tq.q = append(tq.q, t)
	s.queued++
	s.cond.Signal()
	return nil
}

// minBackloggedVtime returns the smallest vtime among tenants with queued
// work. Caller holds s.mu.
func (s *scheduler) minBackloggedVtime() (float64, bool) {
	v, ok := 0.0, false
	for _, tq := range s.tenants {
		if len(tq.q) == 0 {
			continue
		}
		if !ok || tq.vtime < v {
			v, ok = tq.vtime, true
		}
	}
	return v, ok
}

// next blocks until a dispatchable task exists (returning it after
// charging the tenant's virtual time) or the scheduler stops (returning
// nil). Caller is a worker goroutine.
func (s *scheduler) next() *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil
		}
		// Sweep cancelled heads and pick the eligible (backlogged, under
		// its in-flight cap) tenant with the smallest virtual time.
		var pick *tenantQueue
		for _, tq := range s.tenants {
			for len(tq.q) > 0 && tq.q[0].state.Load() == taskCancelled {
				tq.q = tq.q[1:]
				s.queued--
			}
			if len(tq.q) == 0 || tq.inflight >= s.cfg.MaxTenantInflight {
				continue
			}
			if pick == nil || tq.vtime < pick.vtime ||
				(tq.vtime == pick.vtime && tq.id < pick.id) {
				pick = tq
			}
		}
		if pick == nil {
			s.cond.Wait()
			continue
		}
		t := pick.q[0]
		pick.q = pick.q[1:]
		s.queued--
		if !t.state.CompareAndSwap(taskQueued, taskRunning) {
			// Lost the race to a late cancel; it was already uncounted from
			// the queue above, so just look again.
			continue
		}
		cost := t.cost
		if cost <= 0 {
			cost = 1
		}
		pick.vtime += cost / pick.weight
		pick.inflight++
		s.dispatched.Add(1)
		return t
	}
}

// finish returns a worker slot after a task ran.
func (s *scheduler) finish(tq *tenantQueue) {
	s.mu.Lock()
	tq.inflight--
	now := time.Now().Unix()
	slot := int(now % int64(len(s.rateBuckets)))
	if s.rateSecs[slot] != now {
		s.rateSecs[slot] = now
		s.rateBuckets[slot] = 0
	}
	s.rateBuckets[slot]++
	s.mu.Unlock()
	s.completed.Add(1)
	s.cond.Signal()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		t := s.next()
		if t == nil {
			return
		}
		t.run()
		s.finish(t.tq)
	}
}

// depth returns the current global queue depth.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// occupancy returns queued / MaxGlobalQueue, the overload controller's
// input signal.
func (s *scheduler) occupancy() float64 {
	return float64(s.depth()) / float64(s.cfg.MaxGlobalQueue)
}

// inflightTotal returns the number of tasks currently executing.
func (s *scheduler) inflightTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, tq := range s.tenants {
		n += tq.inflight
	}
	return n
}

// completionRate estimates completions per second over the recent window
// (excluding the in-progress second).
func (s *scheduler) completionRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now().Unix()
	var sum int64
	for i := range s.rateBuckets {
		if sec := s.rateSecs[i]; sec != now && sec >= now-rateWindow {
			sum += s.rateBuckets[i]
		}
	}
	return float64(sum) / rateWindow
}

// retryAfter computes an honest Retry-After hint in whole seconds: the
// time to drain the current backlog at the observed completion rate,
// clamped to [1, 30].
func (s *scheduler) retryAfter() int {
	rate := s.completionRate()
	depth := float64(s.depth() + s.inflightTotal())
	secs := 1.0
	if rate > 0 {
		secs = math.Ceil(depth / rate)
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return int(secs)
}

// close stops admitting new work; queued and running work continues.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// drain waits for every queued and in-flight task to finish (the caller
// must have closed admission first), then stops the workers. When ctx
// expires first, still-queued tasks are cancelled, and the workers stop
// after their current task.
func (s *scheduler) drain(ctx context.Context) error {
	var err error
	deadline := ctx.Done()
	for {
		s.mu.Lock()
		idle := s.queued == 0
		for _, tq := range s.tenants {
			if tq.inflight > 0 {
				idle = false
			}
		}
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-deadline:
			err = ctx.Err()
			s.mu.Lock()
			for _, tq := range s.tenants {
				for _, t := range tq.q {
					if t.CancelQueued() {
						s.cancelled.Add(1)
					}
				}
				tq.q, s.queued = nil, s.queued-len(tq.q)
			}
			s.mu.Unlock()
		case <-time.After(5 * time.Millisecond):
			continue
		}
		break
	}
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// tenantIDs returns the registered tenant ids, sorted.
func (s *scheduler) tenantIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
