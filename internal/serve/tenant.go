package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"partadvisor/internal/benchmarks"
	"partadvisor/internal/core"
	"partadvisor/internal/costmodel"
	"partadvisor/internal/exec"
	"partadvisor/internal/guard"
	"partadvisor/internal/hardware"
	"partadvisor/internal/partition"
	"partadvisor/internal/workload"
)

// TenantSpec configures one tenant database at creation time.
type TenantSpec struct {
	// ID names the tenant; it must be unique and non-empty.
	ID string `json:"id"`
	// Bench picks the benchmark database: ssb, tpcds, tpcch, tpch or
	// micro (default micro — the smallest, sized for many tenants per
	// process).
	Bench string `json:"bench"`
	// Engine picks disk (Postgres-XL-like, default) or memory (System-X).
	Engine string `json:"engine"`
	// Scale is the data scale (default 0.3).
	Scale float64 `json:"scale"`
	// Seed seeds data generation and the advisor (default 1).
	Seed int64 `json:"seed"`
	// Weight is the tenant's fair-share weight (default 1).
	Weight float64 `json:"weight"`
	// OfflineEpisodes bootstraps the advisor against the cost model at
	// creation (default 30; 0 keeps the default).
	OfflineEpisodes int `json:"offline_episodes"`
	// OnlineEpisodes is the per-advise-cycle online refinement episode
	// budget (default 2).
	OnlineEpisodes int `json:"online_episodes"`
	// NoGuard disables the DESIGN.md §8 safety envelope around the
	// tenant's online advising (on by default).
	NoGuard bool `json:"no_guard"`
	// AdviseEveryMS overrides the server's default advising period.
	AdviseEveryMS int64 `json:"advise_every_ms"`
}

// normalize applies spec defaults.
func (sp *TenantSpec) normalize() error {
	if sp.ID == "" {
		return fmt.Errorf("serve: tenant spec has no id")
	}
	if sp.Bench == "" {
		sp.Bench = "micro"
	}
	if sp.Engine == "" {
		sp.Engine = "disk"
	}
	if sp.Scale <= 0 {
		sp.Scale = 0.3
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Weight <= 0 {
		sp.Weight = 1
	}
	if sp.OfflineEpisodes <= 0 {
		sp.OfflineEpisodes = 30
	}
	if sp.OnlineEpisodes <= 0 {
		sp.OnlineEpisodes = 2
	}
	return nil
}

func pickBenchmark(name string) *benchmarks.Benchmark {
	switch name {
	case "ssb":
		return benchmarks.SSB()
	case "tpcds":
		return benchmarks.TPCDS()
	case "tpcch":
		return benchmarks.TPCCH()
	case "tpch":
		return benchmarks.TPCH()
	case "micro":
		return benchmarks.Micro()
	}
	return nil
}

// TenantStats is the published per-tenant statistics snapshot. The batch
// and shed counters are live atomics re-read at serialization time; the
// advisor fields are refreshed by the advising goroutine after every
// cycle, so reading stats never blocks behind a running measurement.
type TenantStats struct {
	ID     string  `json:"id"`
	Bench  string  `json:"bench"`
	Weight float64 `json:"weight"`

	// Request-path counters.
	Batches        int64 `json:"batches"`
	Queries        int64 `json:"queries"`
	Shed           int64 `json:"shed"`
	DeadlineMisses int64 `json:"deadline_misses"`

	// Advising-loop counters.
	AdviseCycles   int64 `json:"advise_cycles"`
	PausedCycles   int64 `json:"paused_cycles"`
	PauseInterrupt int64 `json:"pause_interrupts"`
	Deploys        int64 `json:"advise_deploys"`

	// Engine accounting (lock-free published view).
	QueriesExecuted int     `json:"engine_queries"`
	Repartitions    int     `json:"repartitions"`
	BytesMoved      int64   `json:"bytes_moved"`
	SimSeconds      float64 `json:"sim_seconds"`

	// Advisor state as of the last completed cycle.
	EpisodesTrained int               `json:"episodes_trained"`
	BestCost        float64           `json:"best_cost"`
	Design          map[string]string `json:"design"`
	Online          core.OnlineStats  `json:"online"`

	// Durability counters (StateDir mode). RestoredGeneration is the
	// checkpoint generation this tenant was recovered from, or -1 when it
	// started fresh.
	CheckpointsWritten int64 `json:"checkpoints_written"`
	CheckpointErrors   int64 `json:"checkpoint_errors"`
	RestoredGeneration int64 `json:"restored_generation"`
}

// advisorSnap is the advising goroutine's published view of the mutable
// advisor state (everything in TenantStats that isn't an atomic counter
// or a lock-free engine accessor).
type advisorSnap struct {
	episodes int
	bestCost float64
	online   core.OnlineStats
}

// Tenant is one hosted database: engine + workload + monitor + guarded
// online advisor. The advisor and online cost are owned exclusively by
// the advising goroutine; the request path touches only the engine (which
// has its own serialization), the monitor (under monMu) and atomics.
type Tenant struct {
	Spec TenantSpec

	bench *benchmarks.Benchmark
	eng   *exec.Engine
	wl    *workload.Workload
	space *partition.Space
	adv   *core.Advisor
	oc    *core.OnlineCost
	tq    *tenantQueue

	mon   *workload.Monitor
	monMu sync.Mutex

	// paused is supplied by the server: it reports whether the overload
	// controller demands advising be paused.
	paused func() bool

	advCtx    context.Context
	advCancel context.CancelFunc
	advDone   chan struct{}

	// Generational checkpointing (StateDir mode). ckptDir/ckptKeep/
	// ckptEvery are set once at construction; lastCkpt is owned by the
	// advising goroutine. nextGen is the next generation number to write —
	// recovery seeds it past the newest file found on disk (even a corrupt
	// one) so generation numbers are monotonic across restarts.
	ckptDir   string
	ckptKeep  int
	ckptEvery time.Duration
	lastCkpt  time.Time

	nextGen     atomic.Uint64
	restoredGen atomic.Int64
	ckptWrites  atomic.Int64
	ckptErrs    atomic.Int64

	batches        atomic.Int64
	queries        atomic.Int64
	shed           atomic.Int64
	deadlineMisses atomic.Int64
	adviseCycles   atomic.Int64
	pausedCycles   atomic.Int64
	pauseInterrupt atomic.Int64
	deploys        atomic.Int64

	snap atomic.Pointer[advisorSnap]
}

// newTenant builds the tenant: generates data, bootstraps the advisor
// offline against the cost model, deploys the bootstrap suggestion, and
// arms the guarded online cost. It does not start the advising loop.
//
// The bootstrap is deterministic in (spec, seed): recovery rebuilds the
// same tenant, then restores a checkpoint on top — the checkpoint's RNG
// position is always at or past the freshly-bootstrapped advisor's, so
// the core fast-forward restore contract holds.
func newTenant(spec TenantSpec, cfg Config) (*Tenant, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	b := pickBenchmark(spec.Bench)
	if b == nil {
		return nil, fmt.Errorf("serve: unknown benchmark %q", spec.Bench)
	}
	var hw hardware.Profile
	var flavor exec.Flavor
	switch spec.Engine {
	case "disk":
		hw, flavor = hardware.PostgresXLDisk(), exec.Disk
	case "memory":
		hw, flavor = hardware.SystemXMemory(), exec.Memory
	default:
		return nil, fmt.Errorf("serve: unknown engine flavor %q", spec.Engine)
	}

	data := b.Generate(spec.Scale, spec.Seed)
	eng := exec.New(b.Schema, data, hw, flavor)
	sp := b.Space()

	hp := core.Test()
	hp.Episodes = spec.OfflineEpisodes
	hp.OnlineEpisodes = spec.OnlineEpisodes
	hp.OnlineEpsilonFromEpisode = spec.OfflineEpisodes / 2
	adv, err := core.New(sp, b.Workload, hp, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %s: %w", spec.ID, err)
	}
	cm := costmodel.New(eng.TrueCatalog(), hw)
	offCost := func(st *partition.State, freq workload.FreqVector) float64 {
		return cm.WorkloadCost(st, b.Workload, freq)
	}
	if err := adv.TrainOffline(offCost, nil); err != nil {
		return nil, fmt.Errorf("serve: tenant %s offline bootstrap: %w", spec.ID, err)
	}
	st, _, err := adv.Suggest(b.Workload.UniformFreq())
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %s bootstrap suggestion: %w", spec.ID, err)
	}
	eng.Deploy(st, nil)

	oc := core.NewOnlineCost(eng, b.Workload, nil)
	if !spec.NoGuard {
		g, err := guard.New(eng, b.Workload, guard.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %s guard: %w", spec.ID, err)
		}
		oc.Guard = g
	}

	ctx, cancel := context.WithCancel(context.Background())
	t := &Tenant{
		Spec:      spec,
		bench:     b,
		eng:       eng,
		wl:        b.Workload,
		space:     sp,
		adv:       adv,
		oc:        oc,
		mon:       workload.NewMonitor(b.Workload),
		advCtx:    ctx,
		advCancel: cancel,
		advDone:   make(chan struct{}),
	}
	// Measurements and the per-episode Stop poll are bounded by the
	// tenant's lifetime and the overload controller's pause demand.
	oc.Ctx = ctx
	adv.Stop = func() bool {
		return ctx.Err() != nil || (t.paused != nil && t.paused())
	}
	t.snap.Store(&advisorSnap{episodes: adv.EpisodesTrained})
	t.restoredGen.Store(-1)
	if spec.AdviseEveryMS <= 0 {
		spec.AdviseEveryMS = cfg.AdviseEvery.Milliseconds()
		t.Spec.AdviseEveryMS = spec.AdviseEveryMS
	}
	if cfg.StateDir != "" {
		t.ckptDir = filepath.Join(cfg.StateDir, ckptSubdir, spec.ID)
		t.ckptKeep = cfg.CheckpointKeep
		t.ckptEvery = cfg.CheckpointEvery
		if err := os.MkdirAll(t.ckptDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: tenant %s checkpoint dir: %w", spec.ID, err)
		}
	}
	return t, nil
}

// startAdvising launches the background advising loop.
func (t *Tenant) startAdvising() {
	go t.adviseLoop(time.Duration(t.Spec.AdviseEveryMS) * time.Millisecond)
}

// stopAdvising cancels the loop and waits for it to exit. Safe to call
// more than once.
func (t *Tenant) stopAdvising() {
	t.advCancel()
	<-t.advDone
}

// adviseLoop periodically rotates the observed workload window, refines
// the advisor online against the live engine (inside the guard envelope),
// and deploys the best-known design for the observed mix. Under overload
// tier >= 1 the loop idles: cycles are skipped before they start, and the
// Stop poll cuts an in-flight cycle at its next episode boundary.
func (t *Tenant) adviseLoop(every time.Duration) {
	defer close(t.advDone)
	// Generation 0 is written here, not in CreateTenant: the advising
	// goroutine is the advisor's single owner, so writing from the loop
	// needs no locking. A tenant that dies before its first interval
	// still recovers — from this bootstrap snapshot.
	if t.ckptDir != "" && t.nextGen.Load() == 0 {
		t.saveGeneration()
		t.lastCkpt = time.Now()
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-t.advCtx.Done():
			return
		case <-tick.C:
		}
		if t.paused != nil && t.paused() {
			t.pausedCycles.Add(1)
		} else {
			t.adviseOnce()
		}
		t.maybeCheckpoint()
	}
}

// maybeCheckpoint writes a new checkpoint generation if the interval has
// elapsed. Called only from the advising goroutine between cycles — an
// episode boundary, so the advisor is never snapshotted mid-step.
func (t *Tenant) maybeCheckpoint() {
	if t.ckptDir == "" || t.ckptEvery <= 0 {
		return
	}
	if time.Since(t.lastCkpt) < t.ckptEvery {
		return
	}
	t.saveGeneration()
	t.lastCkpt = time.Now()
}

// saveGeneration writes the next checkpoint generation atomically and
// prunes old ones. Single-owner: callers are the advising goroutine (at
// an episode boundary) or the server after stopAdvising.
func (t *Tenant) saveGeneration() (string, error) {
	gen := t.nextGen.Add(1) - 1
	path := generationPath(t.ckptDir, gen)
	if err := t.adv.SaveCheckpoint(path); err != nil {
		t.ckptErrs.Add(1)
		return "", fmt.Errorf("serve: tenant %s generation %d: %w", t.Spec.ID, gen, err)
	}
	t.ckptWrites.Add(1)
	t.pruneGenerations()
	return path, nil
}

// pruneGenerations removes all but the newest ckptKeep generations.
func (t *Tenant) pruneGenerations() {
	gens, err := listGenerations(t.ckptDir)
	if err != nil || len(gens) <= t.ckptKeep {
		return
	}
	for _, g := range gens[t.ckptKeep:] {
		os.Remove(g.Path)
	}
}

// restoreCheckpoint overlays a verified checkpoint onto the freshly
// bootstrapped advisor and re-deploys its best suggestion so the engine's
// layout matches the restored policy. Must run before startAdvising.
func (t *Tenant) restoreCheckpoint(ck *core.Checkpoint) error {
	if err := t.adv.Restore(ck); err != nil {
		return err
	}
	st, _, err := t.adv.Suggest(t.wl.UniformFreq())
	if err != nil {
		return fmt.Errorf("serve: tenant %s post-restore suggestion: %w", t.Spec.ID, err)
	}
	t.eng.Deploy(st, nil)
	t.snap.Store(&advisorSnap{episodes: t.adv.EpisodesTrained})
	return nil
}

// adviseOnce runs one advising cycle against the current observed mix.
func (t *Tenant) adviseOnce() {
	t.monMu.Lock()
	observed := t.mon.Observed()
	mix := t.mon.Rotate()
	t.monMu.Unlock()
	if observed == 0 {
		// Nothing seen this window: nothing to adapt to.
		return
	}
	sampler := func(*rand.Rand) workload.FreqVector { return mix }
	err := t.adv.TrainOnline(t.oc, sampler)
	interrupted := errors.Is(err, core.ErrStopped)
	if interrupted {
		t.pauseInterrupt.Add(1)
	} else if err != nil {
		// Configuration errors cannot heal by retrying; record the cycle
		// and keep serving traffic with the current design.
		t.adviseCycles.Add(1)
		t.publishSnap(mix)
		return
	}
	if !interrupted && t.advCtx.Err() == nil {
		// Deploy the best-known design for the observed mix (the runtime
		// cache makes ranking visited designs nearly free, and Deploy
		// no-ops per table when the design is already in place).
		if st, _, err := t.adv.SuggestBest(mix, t.oc); err == nil && st != nil {
			_, before, _ := t.eng.Counters()
			t.eng.Deploy(st, nil)
			if _, after, _ := t.eng.Counters(); after != before {
				t.deploys.Add(1)
			}
		}
	}
	t.adviseCycles.Add(1)
	t.publishSnap(mix)
}

// publishSnap refreshes the lock-free advisor snapshot after a cycle.
func (t *Tenant) publishSnap(mix workload.FreqVector) {
	ns := &advisorSnap{
		episodes: t.adv.EpisodesTrained,
		online:   t.oc.Stats,
	}
	if c, ok := bestCachedCost(t.oc, mix); ok {
		ns.bestCost = c
	}
	t.snap.Store(ns)
}

// bestCachedCost returns the cheapest fully-cached cost over the visited
// designs for the mix.
func bestCachedCost(oc *core.OnlineCost, mix workload.FreqVector) (float64, bool) {
	best, ok := 0.0, false
	for _, st := range oc.Visited() {
		if c, hit := oc.CachedCost(st, mix); hit && (!ok || c < best) {
			best, ok = c, true
		}
	}
	return best, ok
}

// Stats assembles the tenant's published statistics.
func (t *Tenant) Stats() TenantStats {
	qx, reps, moved := t.eng.Counters()
	s := TenantStats{
		ID:              t.Spec.ID,
		Bench:           t.Spec.Bench,
		Weight:          t.Spec.Weight,
		Batches:         t.batches.Load(),
		Queries:         t.queries.Load(),
		Shed:            t.shed.Load(),
		DeadlineMisses:  t.deadlineMisses.Load(),
		AdviseCycles:    t.adviseCycles.Load(),
		PausedCycles:    t.pausedCycles.Load(),
		PauseInterrupt:  t.pauseInterrupt.Load(),
		Deploys:         t.deploys.Load(),
		QueriesExecuted: qx,
		Repartitions:    reps,
		BytesMoved:      moved,
		SimSeconds:      t.eng.SimNow(),
		Design:          make(map[string]string),

		CheckpointsWritten: t.ckptWrites.Load(),
		CheckpointErrors:   t.ckptErrs.Load(),
		RestoredGeneration: t.restoredGen.Load(),
	}
	if snap := t.snap.Load(); snap != nil {
		s.EpisodesTrained = snap.episodes
		s.BestCost = snap.bestCost
		s.Online = snap.online
	}
	for _, tbl := range t.eng.Schema.TableNames() {
		s.Design[tbl] = t.eng.CurrentDesign(tbl).String()
	}
	return s
}

// BatchResult is the outcome of one admitted batch execution.
type BatchResult struct {
	Requested    int
	Completed    int
	SimSeconds   float64
	Aborts       int
	DeadlineMiss bool
	// Cancelled marks a request whose deadline expired while it was still
	// queued: nothing executed, nothing was charged, and the tenant's
	// batch counter was not advanced.
	Cancelled bool
}

// execBatch runs an admitted batch on the tenant's engine under ctx and
// feeds the charged prefix into the workload monitor. names[i] labels
// qs[i] for monitor accounting.
func (t *Tenant) execBatch(ctx context.Context, qs []exec.BatchQuery, names []string, workers int) BatchResult {
	rep := t.eng.RunBatchQueriesAbortCtx(ctx, qs, workers, nil, nil)
	res := BatchResult{
		Requested:    len(qs),
		Completed:    rep.Completed,
		SimSeconds:   rep.Seconds,
		Aborts:       rep.Aborts,
		DeadlineMiss: ctx.Err() != nil,
	}
	t.batches.Add(1)
	t.queries.Add(int64(rep.Completed))
	if res.DeadlineMiss {
		t.deadlineMisses.Add(1)
	}
	t.monMu.Lock()
	for i := 0; i < rep.Completed; i++ {
		// Only charged executions feed the observed mix.
		_ = t.mon.Record(names[i], 1)
	}
	t.monMu.Unlock()
	return res
}

// resolveQueries maps query names (empty = the whole workload, repeated
// `repeat` times) to batch entries.
func (t *Tenant) resolveQueries(names []string, repeat int, limit float64) ([]exec.BatchQuery, []string, error) {
	if repeat <= 0 {
		repeat = 1
	}
	if len(names) == 0 {
		names = make([]string, len(t.wl.Queries))
		for i, q := range t.wl.Queries {
			names[i] = q.Name
		}
	}
	qs := make([]exec.BatchQuery, 0, len(names)*repeat)
	labels := make([]string, 0, len(names)*repeat)
	for r := 0; r < repeat; r++ {
		for _, n := range names {
			q := t.wl.Query(n)
			if q == nil {
				return nil, nil, fmt.Errorf("serve: tenant %s has no query %q", t.Spec.ID, n)
			}
			qs = append(qs, exec.BatchQuery{Graph: q.Graph, Limit: limit})
			labels = append(labels, n)
		}
	}
	return qs, labels, nil
}

// Explain returns the tenant engine's plan for a named query (lock-free:
// it never waits behind running batches).
func (t *Tenant) Explain(name string) ([]string, float64, error) {
	q := t.wl.Query(name)
	if q == nil {
		return nil, 0, fmt.Errorf("serve: tenant %s has no query %q", t.Spec.ID, name)
	}
	plan, sec := t.eng.Explain(q.Graph)
	return plan, sec, nil
}

// checkpoint writes the tenant's advisor state atomically into dir.
// Must only be called after stopAdvising (the advisor is single-owner).
func (t *Tenant) checkpoint(dir string) (string, error) {
	path := filepath.Join(dir, t.Spec.ID+".ckpt")
	if err := t.adv.SaveCheckpoint(path); err != nil {
		return "", err
	}
	return path, nil
}
