package serve

import "sync/atomic"

// Tier is the service's degradation level.
type Tier int32

const (
	// TierNormal serves everything: batch traffic, background advising.
	TierNormal Tier = iota
	// TierPauseAdvising sheds the service's own optional work first:
	// every tenant's background advising loop pauses at its next episode
	// boundary. Client traffic is untouched.
	TierPauseAdvising
	// TierShedLowPriority additionally sheds priority-0 batch traffic at
	// admission (429 + Retry-After). Health and stats are never shed at
	// any tier.
	TierShedLowPriority
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierPauseAdvising:
		return "pause-advising"
	case TierShedLowPriority:
		return "shed-low-priority"
	default:
		return "normal"
	}
}

// overload is the hysteresis tier controller. Observe is driven by the
// server's tick loop (one call per TickEvery) with the global queue
// occupancy; tests drive it directly. The current tier is read lock-free
// from every request path.
type overload struct {
	cfg  Config
	tier atomic.Int32
	// up/down are consecutive-tick streak counters (only touched by the
	// single Observe caller).
	up, down int
	// escalations and recoveries count tier-up and back-to-normal
	// transitions for /statz.
	escalations atomic.Int64
	recoveries  atomic.Int64
}

func newOverload(cfg Config) *overload { return &overload{cfg: cfg} }

// Tier returns the current degradation tier.
func (o *overload) Tier() Tier { return Tier(o.tier.Load()) }

// Observe feeds one occupancy sample ([0,1]) and returns the (possibly
// changed) tier. Escalation requires TierUpTicks consecutive samples at or
// above the target tier's threshold and jumps straight to the demanded
// tier; recovery requires TierDownTicks consecutive samples below the
// current tier's threshold and steps down one tier at a time.
func (o *overload) Observe(occupancy float64) Tier {
	target := TierNormal
	switch {
	case occupancy >= o.cfg.Tier2Occupancy:
		target = TierShedLowPriority
	case occupancy >= o.cfg.Tier1Occupancy:
		target = TierPauseAdvising
	}
	cur := o.Tier()
	switch {
	case target > cur:
		o.up++
		o.down = 0
		if o.up >= o.cfg.TierUpTicks {
			o.tier.Store(int32(target))
			o.escalations.Add(1)
			o.up, o.down = 0, 0
		}
	case target < cur:
		o.down++
		o.up = 0
		if o.down >= o.cfg.TierDownTicks {
			next := cur - 1
			o.tier.Store(int32(next))
			if next == TierNormal {
				o.recoveries.Add(1)
			}
			o.up, o.down = 0, 0
		}
	default:
		o.up, o.down = 0, 0
	}
	return o.Tier()
}
