package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"partadvisor/internal/core"
)

// fastSpec is a tenant sized for -race tests: the smallest benchmark at a
// tiny scale with a 2-episode offline bootstrap.
func fastSpec(id string) TenantSpec {
	return TenantSpec{
		ID:              id,
		Bench:           "micro",
		Scale:           0.05,
		Seed:            1,
		OfflineEpisodes: 2,
		OnlineEpisodes:  1,
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	cfg.MaxTenantInflight = 2
	cfg.MaxTenantQueue = 2
	cfg.MaxGlobalQueue = 4
	cfg.TickEvery = 10 * time.Millisecond
	cfg.AdviseEvery = 25 * time.Millisecond
	return cfg
}

func mustShutdown(t *testing.T, s *Server) ShutdownReport {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	return rep
}

// TestServerConcurrentTenants drives two tenants from concurrent clients
// over real HTTP under -race: every answer is 200 or 429 (sheds carry
// Retry-After), stats endpoints answer throughout, and shutdown leaves no
// goroutines behind.
func TestServerConcurrentTenants(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())

	for _, id := range []string{"t1", "t2"} {
		spec := fastSpec(id)
		body, _ := json.Marshal(spec)
		resp, err := http.Post(hs.URL+"/tenants", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: status %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Duplicate creation must be rejected, not clobber the tenant.
	body, _ := json.Marshal(fastSpec("t1"))
	if resp, err := http.Post(hs.URL+"/tenants", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("duplicate tenant: status %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	var firstBad string
	record := func(code int, detail string) {
		mu.Lock()
		defer mu.Unlock()
		statuses[code]++
		if detail != "" && firstBad == "" {
			firstBad = detail
		}
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		tenant := fmt.Sprintf("t%d", g%2+1)
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				resp, err := http.Post(hs.URL+"/tenants/"+tenant+"/batch",
					"application/json", bytes.NewReader([]byte(`{"repeat":2}`)))
				if err != nil {
					record(-1, err.Error())
					return
				}
				detail := ""
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						detail = "429 without Retry-After"
					}
				default:
					detail = fmt.Sprintf("unexpected status %d", resp.StatusCode)
				}
				resp.Body.Close()
				record(resp.StatusCode, detail)
			}
		}()
	}
	// Health and stats must answer while the pool is saturated.
	for i := 0; i < 10; i++ {
		for _, path := range []string{"/healthz", "/statz", "/tenants/t1/stats", "/tenants"} {
			resp, err := http.Get(hs.URL + path)
			if err != nil {
				t.Fatalf("GET %s under load: %v", path, err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s under load: status %d", path, resp.StatusCode)
			}
			resp.Body.Close()
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()

	if firstBad != "" {
		t.Fatalf("bad response under load: %s (statuses: %v)", firstBad, statuses)
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no batch succeeded: %v", statuses)
	}

	// Explain serves a real plan for a workload query.
	qname := func() string {
		tn, _ := s.Tenant("t1")
		return tn.wl.Queries[0].Name
	}()
	resp, err := http.Get(hs.URL + "/tenants/t1/explain?query=" + qname)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Deleting a tenant makes its endpoints 404.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/tenants/t2", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delete: status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if resp, err := http.Get(hs.URL + "/tenants/t2/stats"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("stats after delete: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}

	mustShutdown(t, s)
	hs.Close()
	http.DefaultClient.CloseIdleConnections()

	// No goroutine leaks: workers, tick loop, advisors and HTTP plumbing
	// are all gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHTTPShedDeterministic guarantees the 429 path: with no workers
// started, queued requests time out as deadline misses (200) and the
// request past the global bound is shed with Retry-After.
func TestHTTPShedDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.MaxGlobalQueue = 2
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately no Start(): nothing drains, so the queue fills exactly.
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	if _, err := s.CreateTenant(fastSpec("t1")); err != nil {
		t.Fatal(err)
	}

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(hs.URL+"/tenants/t1/batch", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for i := 0; i < 2; i++ {
		resp := post(`{"deadline_ms":150}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("queued request %d: status %d, want 200 deadline-miss", i, resp.StatusCode)
		}
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !br.DeadlineMiss || br.Completed != 0 {
			t.Fatalf("queued request %d: %+v, want deadline miss with 0 completed", i, br)
		}
	}
	resp := post(`{"deadline_ms":150}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er struct {
		RetryAfterSec int `json:"retry_after_sec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if er.RetryAfterSec < 1 || er.RetryAfterSec > 30 {
		t.Fatalf("retry_after_sec = %d, want within [1,30]", er.RetryAfterSec)
	}

	// The cancelled tasks never ran and no worker will sweep them; the
	// drain deadline force-clears the queue.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestQueuedDeadlineCancel covers both deadline paths at the server API:
// a request whose context dies while queued answers immediately without a
// worker, and the running batch it was queued behind is cut promptly at
// the frozen cursor when its own context dies.
func TestQueuedDeadlineCancel(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	cfg.MaxTenantInflight = 1
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer mustShutdown(t, s)

	tn, err := s.CreateTenant(fastSpec("t1"))
	if err != nil {
		t.Fatal(err)
	}

	// A huge batch occupies the only worker...
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	wait1, err := s.SubmitBatch(ctx1, tn, nil, 100000, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.inflightTotal() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("big batch never started")
		}
		time.Sleep(time.Millisecond)
	}

	// ...so the second request queues; its already-dead context must
	// answer instantly via the queued-cancel path.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	wait2, err := s.SubmitBatch(ctx2, tn, nil, 3, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res2, err := wait2()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.DeadlineMiss || res2.Completed != 0 {
		t.Fatalf("queued cancel: %+v, want deadline miss with nothing charged", res2)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("queued cancel took %v; must not wait for the running batch", el)
	}

	// Cutting the running batch charges only the delivered prefix and
	// returns promptly through the propagated abort.
	cancel1()
	res1, err := wait1()
	if err != nil {
		t.Fatal(err)
	}
	if !res1.DeadlineMiss {
		t.Fatal("cancelled running batch not flagged as deadline miss")
	}
	if res1.Completed >= res1.Requested {
		t.Fatalf("cancelled running batch completed %d of %d; expected a cut", res1.Completed, res1.Requested)
	}
	if got := tn.Stats().DeadlineMisses; got != 2 {
		t.Fatalf("tenant deadline misses = %d, want 2", got)
	}
}

// TestDeleteTenantUnblocksQueuedWaiters: deleting a tenant with queued
// batches must answer every waiter with ErrCancelled — even waiters whose
// context has no deadline — instead of leaving their handler goroutines
// blocked forever, and a stale tenant handle must be refused at submit.
func TestDeleteTenantUnblocksQueuedWaiters(t *testing.T) {
	s, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately no Start(): nothing dispatches, so the scheduler-side
	// cancel in DeleteTenant is the only thing that can answer the waiters.
	tn, err := s.CreateTenant(fastSpec("t1"))
	if err != nil {
		t.Fatal(err)
	}
	var waits []func() (BatchResult, error)
	for i := 0; i < 2; i++ {
		wait, err := s.SubmitBatch(context.Background(), tn, nil, 1, 0, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, wait)
	}
	if err := s.DeleteTenant("t1"); err != nil {
		t.Fatal(err)
	}
	for i, wait := range waits {
		errCh := make(chan error, 1)
		go func() {
			_, err := wait()
			errCh <- err
		}()
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("waiter %d: %v, want ErrCancelled", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d still blocked after tenant delete", i)
		}
	}
	// The deleted tenant's queue is deregistered: submitting through the
	// stale handle is refused instead of stranding a task.
	if _, err := s.SubmitBatch(context.Background(), tn, nil, 1, 0, 1, 1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("submit via deleted tenant: %v, want ErrUnknownTenant", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDrainDeadlineAnswersQueuedWaiters: when the drain deadline clears
// the queue at shutdown, still-blocked waiters (no request deadline of
// their own) must be answered with ErrCancelled, not abandoned.
func TestDrainDeadlineAnswersQueuedWaiters(t *testing.T) {
	s, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): the task can never run, forcing the drain-deadline path.
	tn, err := s.CreateTenant(fastSpec("t1"))
	if err != nil {
		t.Fatal(err)
	}
	wait, err := s.SubmitBatch(context.Background(), tn, nil, 1, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := wait()
		errCh <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rep, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if rep.Drained {
		t.Fatal("shutdown claims a clean drain despite the cancelled queue")
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("waiter: %v, want ErrCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after drain deadline")
	}
}

// TestPrioritySheddingAndPauseResume drives the overload controller
// directly: tier 2 sheds priority-0 work at admission while priority-1
// work still runs, advising is paused, and recovery resumes it.
func TestPrioritySheddingAndPauseResume(t *testing.T) {
	cfg := testConfig()
	cfg.TickEvery = time.Hour // keep the tick loop off Observe; the test drives it
	cfg.TierUpTicks = 2
	cfg.TierDownTicks = 2
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer mustShutdown(t, s)
	tn, err := s.CreateTenant(fastSpec("t1"))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < cfg.TierUpTicks; i++ {
		s.ov.Observe(1.0)
	}
	if got := s.Tier(); got != TierShedLowPriority {
		t.Fatalf("tier = %v after sustained overload, want shed-low-priority", got)
	}
	if !tn.paused() {
		t.Fatal("advising not paused at tier 2")
	}

	if _, err := s.SubmitBatch(context.Background(), tn, nil, 1, 0, 0, 1); !errors.Is(err, ErrShedPriority) {
		t.Fatalf("priority-0 under tier 2: %v, want ErrShedPriority", err)
	}
	if !IsShed(ErrShedPriority) {
		t.Fatal("ErrShedPriority must map to a 429 shed")
	}
	wait, err := s.SubmitBatch(context.Background(), tn, nil, 1, 0, 1, 1)
	if err != nil {
		t.Fatalf("priority-1 under tier 2: %v, want admitted", err)
	}
	if res, err := wait(); err != nil || res.Completed != res.Requested {
		t.Fatalf("priority-1 batch: res %+v err %v", res, err)
	}

	// Recovery: tier steps down 2 → 1 → 0 and advising unpauses.
	for i := 0; i < 2*cfg.TierDownTicks; i++ {
		s.ov.Observe(0.0)
	}
	if got := s.Tier(); got != TierNormal {
		t.Fatalf("tier = %v after cooldown, want normal", got)
	}
	if tn.paused() {
		t.Fatal("advising still paused after recovery")
	}
}

// TestShutdownCheckpointsTenants: shutdown writes one loadable checkpoint
// per tenant, and a fresh advisor resumes from it.
func TestShutdownCheckpointsTenants(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointDir = t.TempDir()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	specs := []TenantSpec{fastSpec("alpha"), fastSpec("beta")}
	for _, spec := range specs {
		if _, err := s.CreateTenant(spec); err != nil {
			t.Fatal(err)
		}
	}
	tn, _ := s.Tenant("alpha")
	wait, err := s.SubmitBatch(context.Background(), tn, nil, 2, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wait(); err != nil {
		t.Fatal(err)
	}

	rep := mustShutdown(t, s)
	trained := tn.adv.EpisodesTrained // advising stopped: single-owner state is readable
	if !rep.Drained {
		t.Fatal("shutdown did not drain")
	}
	if len(rep.Checkpoints) != len(specs) {
		t.Fatalf("checkpoints = %v, want one per tenant", rep.Checkpoints)
	}
	for _, path := range rep.Checkpoints {
		if _, err := core.LoadCheckpoint(path); err != nil {
			t.Fatalf("checkpoint %s does not load: %v", path, err)
		}
	}

	// A fresh advisor built like the tenant's resumes from the file.
	spec := specs[0]
	b := pickBenchmark(spec.Bench)
	hp := core.Test()
	hp.Episodes = spec.OfflineEpisodes
	hp.OnlineEpisodes = spec.OnlineEpisodes
	hp.OnlineEpsilonFromEpisode = spec.OfflineEpisodes / 2
	fresh, err := core.New(b.Space(), b.Workload, hp, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Resume(cfg.CheckpointDir + "/alpha.ckpt"); err != nil {
		t.Fatalf("resume from shutdown checkpoint: %v", err)
	}
	if fresh.EpisodesTrained < trained {
		t.Fatalf("resumed advisor has %d episodes, want >= %d", fresh.EpisodesTrained, trained)
	}

	// After shutdown the server is durably draining: everything new is
	// rejected with ErrClosed.
	if _, err := s.CreateTenant(fastSpec("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after shutdown: %v, want ErrClosed", err)
	}
	if _, err := s.SubmitBatch(context.Background(), tn, nil, 1, 0, 1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown: %v, want ErrClosed", err)
	}
}

// TestConfigValidate spot-checks the envelope validation.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.MaxConcurrent = 0
	if bad.Validate() == nil {
		t.Fatal("MaxConcurrent 0 accepted")
	}
	bad = DefaultConfig()
	bad.Tier2Occupancy = 0.3 // below tier 1
	if bad.Validate() == nil {
		t.Fatal("tier-2 below tier-1 accepted")
	}
}
