package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// BatchRequest is the POST /tenants/{id}/batch payload.
type BatchRequest struct {
	// Queries names workload queries to run (empty = the whole workload),
	// each repeated Repeat times (default 1).
	Queries []string `json:"queries"`
	Repeat  int      `json:"repeat"`
	// LimitSec is the per-query §4.2 time limit in simulated seconds
	// (0 = none).
	LimitSec float64 `json:"limit_sec"`
	// Priority 0 is sheddable under overload tier 2; >= 1 is normal
	// traffic (default 1 when omitted).
	Priority *int `json:"priority"`
	// DeadlineMS bounds the request (queueing + execution) in wall-clock
	// milliseconds; the deadline propagates into the engine batch.
	DeadlineMS int64 `json:"deadline_ms"`
	// Workers overrides the engine's per-batch worker count.
	Workers int `json:"workers"`
}

// BatchResponse is the JSON answer for an executed (or deadline-cut)
// batch.
type BatchResponse struct {
	Tenant       string  `json:"tenant"`
	Requested    int     `json:"requested"`
	Completed    int     `json:"completed"`
	SimSeconds   float64 `json:"sim_seconds"`
	Aborts       int     `json:"aborts"`
	DeadlineMiss bool    `json:"deadline_miss"`
	Cancelled    bool    `json:"cancelled"`
	WallMS       float64 `json:"wall_ms"`
	Tier         int     `json:"tier"`
}

type errorResponse struct {
	Error         string `json:"error"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

// Handler builds the service's HTTP API:
//
//	POST   /tenants              create a tenant (TenantSpec body)
//	GET    /tenants              list tenants with stats
//	DELETE /tenants/{id}         delete a tenant
//	POST   /tenants/{id}/batch   submit a query batch (admission-controlled)
//	GET    /tenants/{id}/stats   per-tenant stats (never queued, never shed)
//	GET    /tenants/{id}/explain?query=q1  plan of a workload query
//	GET    /healthz              liveness + tier (never queued, never shed)
//	GET    /readyz               readiness (503 until recovery completes)
//	GET    /statz                global service stats
//
// The mutating tenant paths (create, delete, batch) are gated on
// readiness: until recovery completes they answer 503 + Retry-After so a
// restarting process never serves traffic against half-rebuilt tenants.
// healthz stays liveness-only and answers 200 throughout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tenants", s.gateReady(s.handleCreateTenant))
	mux.HandleFunc("GET /tenants", s.handleListTenants)
	mux.HandleFunc("DELETE /tenants/{id}", s.gateReady(s.handleDeleteTenant))
	mux.HandleFunc("POST /tenants/{id}/batch", s.gateReady(s.handleBatch))
	mux.HandleFunc("GET /tenants/{id}/stats", s.handleTenantStats)
	mux.HandleFunc("GET /tenants/{id}/explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// gateReady rejects request-path traffic with 503 + Retry-After until
// the server is ready (recovery complete).
func (s *Server) gateReady(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error: "serve: recovering", RetryAfterSec: 1,
			})
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeShed answers a load-shed with 429 + Retry-After — the graceful-
// degradation contract: clients learn when to come back instead of
// piling on.
func (s *Server) writeShed(w http.ResponseWriter, err error) {
	retry := s.RetryAfter()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), RetryAfterSec: retry})
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var spec TenantSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad tenant spec: " + err.Error()})
		return
	}
	t, err := s.CreateTenant(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, t.Stats())
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	list := s.TenantList()
	out := make([]TenantStats, len(list))
	for i, t := range list {
		out[i] = t.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	switch err := s.DeleteTenant(r.PathValue("id")); {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
	case errors.Is(err, ErrUnknownTenant):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t, ok := s.Tenant(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: ErrUnknownTenant.Error()})
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad batch request: " + err.Error()})
		return
	}
	priority := 1
	if req.Priority != nil {
		priority = *req.Priority
	}
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	start := time.Now()
	wait, err := s.SubmitBatch(ctx, t, req.Queries, req.Repeat, req.LimitSec, priority, req.Workers)
	switch {
	case err == nil:
	case IsShed(err):
		s.writeShed(w, err)
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrUnknownTenant):
		// The tenant was deleted between the handler's lookup and admission.
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	res, err := wait()
	switch {
	case err == nil:
	case errors.Is(err, ErrCancelled):
		// Admitted but withdrawn before execution (tenant deleted or server
		// drained): the work never ran, so this is not a success.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		Tenant:       t.Spec.ID,
		Requested:    res.Requested,
		Completed:    res.Completed,
		SimSeconds:   res.SimSeconds,
		Aborts:       res.Aborts,
		DeadlineMiss: res.DeadlineMiss,
		Cancelled:    res.Cancelled,
		WallMS:       float64(time.Since(start).Microseconds()) / 1000,
		Tier:         int(s.Tier()),
	})
}

func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.Tenant(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: ErrUnknownTenant.Error()})
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	t, ok := s.Tenant(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: ErrUnknownTenant.Error()})
		return
	}
	name := r.URL.Query().Get("query")
	plan, sec, err := t.Explain(name)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant": t.Spec.ID, "query": name, "plan": plan, "est_seconds": sec,
	})
}

// handleHealth never queues and is never shed: it reads only atomics and
// lock-free published engine views, so it answers even while every worker
// is saturated.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"tier":        int(s.Tier()),
		"tier_name":   s.Tier().String(),
		"queue_depth": s.sched.depth(),
		"inflight":    s.sched.inflightTotal(),
		"tenants":     len(s.TenantList()),
	})
}

// handleReady is the readiness probe: 503 while recovery is in flight,
// 200 with the recovery report once the server accepts traffic.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"recovery": s.Recovery(),
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// String implements fmt.Stringer for log lines.
func (s *Server) String() string {
	st := s.Stats()
	return fmt.Sprintf("serve: %d tenants, tier %s, %d served, %d shed, depth %d",
		st.Tenants, st.TierName, st.Served, st.ShedQueue+st.ShedPriority, st.QueueDepth)
}
