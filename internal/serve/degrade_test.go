package serve

import "testing"

func overloadConfig() Config {
	cfg := DefaultConfig()
	cfg.TierUpTicks = 3
	cfg.TierDownTicks = 4
	return cfg
}

// TestTierHysteresis walks the full ladder: escalation only after
// TierUpTicks sustained samples, direct jump to the demanded tier,
// one-step recovery after TierDownTicks, and streak resets on mixed
// signals.
func TestTierHysteresis(t *testing.T) {
	o := newOverload(overloadConfig())

	// Two hot ticks are not enough; a cool tick resets the streak.
	o.Observe(0.6)
	o.Observe(0.6)
	o.Observe(0.1)
	if got := o.Tier(); got != TierNormal {
		t.Fatalf("after broken streak: tier %v, want normal", got)
	}

	// Three sustained tier-1 samples escalate.
	for i := 0; i < 3; i++ {
		o.Observe(0.6)
	}
	if got := o.Tier(); got != TierPauseAdvising {
		t.Fatalf("after 3 hot ticks: tier %v, want pause-advising", got)
	}
	if got := o.escalations.Load(); got != 1 {
		t.Fatalf("escalations = %d, want 1", got)
	}

	// Sustained tier-2 occupancy jumps straight to shedding.
	for i := 0; i < 3; i++ {
		o.Observe(0.95)
	}
	if got := o.Tier(); got != TierShedLowPriority {
		t.Fatalf("after 3 overload ticks: tier %v, want shed-low-priority", got)
	}

	// Recovery steps down one tier at a time, each after TierDownTicks.
	for i := 0; i < 4; i++ {
		o.Observe(0.1)
	}
	if got := o.Tier(); got != TierPauseAdvising {
		t.Fatalf("after first cool window: tier %v, want pause-advising (one step)", got)
	}
	if got := o.recoveries.Load(); got != 0 {
		t.Fatalf("recoveries = %d before reaching normal, want 0", got)
	}
	for i := 0; i < 4; i++ {
		o.Observe(0.1)
	}
	if got := o.Tier(); got != TierNormal {
		t.Fatalf("after second cool window: tier %v, want normal", got)
	}
	if got := o.recoveries.Load(); got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
}

// TestTierHoldsUnderMatchingLoad: samples matching the current tier reset
// both streaks — no drift in either direction.
func TestTierHoldsUnderMatchingLoad(t *testing.T) {
	o := newOverload(overloadConfig())
	for i := 0; i < 3; i++ {
		o.Observe(0.6)
	}
	if o.Tier() != TierPauseAdvising {
		t.Fatal("setup: expected tier 1")
	}
	// Alternate cool and tier-1 samples: recovery needs 4 consecutive.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			o.Observe(0.1)
		} else {
			o.Observe(0.6)
		}
	}
	if got := o.Tier(); got != TierPauseAdvising {
		t.Fatalf("flapping load moved the tier to %v; hysteresis should hold it", got)
	}
}

func TestTierString(t *testing.T) {
	cases := map[Tier]string{
		TierNormal:          "normal",
		TierPauseAdvising:   "pause-advising",
		TierShedLowPriority: "shed-low-priority",
	}
	for tier, want := range cases {
		if got := tier.String(); got != want {
			t.Fatalf("Tier(%d).String() = %q, want %q", tier, got, want)
		}
	}
}
