// Package serve turns the batch advisor engine into a long-running
// multi-tenant service that degrades gracefully under overload — the
// "advisor-as-a-service" layer of DESIGN.md §9.
//
// Each tenant is an independent database: schema + materialized data +
// exec.Engine + workload monitor + a guarded online advisor refining the
// tenant's partitioning in a background goroutine. The robustness core
// wraps every request path:
//
//  1. Admission control. Work is admitted through bounded per-tenant
//     queues, a bounded global queue, and a fixed worker pool (a global
//     semaphore) with a per-tenant in-flight cap. When a bound is hit the
//     request is shed immediately with ErrTenantQueueFull /
//     ErrGlobalQueueFull — the HTTP layer maps every shed to
//     429 + Retry-After — instead of piling up goroutines.
//
//  2. Weighted-fair scheduling. Queued batches are dispatched by
//     start-time-lifted virtual-time fair queueing: each tenant accrues
//     virtual time cost/weight per dispatched batch, and the scheduler
//     always serves the backlogged tenant with the smallest virtual time.
//     A hot tenant saturating its queue cannot starve the others; it can
//     only consume its weight share of the worker pool.
//
//  3. Request deadlines. A batch's context deadline propagates through
//     exec.Engine.RunBatchQueriesAbortCtx into the frozen-cursor abort:
//     a batch cut at its deadline charges exactly the delivered prefix
//     with bit-identical accounting. Deadlines that expire while the
//     request is still queued cancel it without occupying a worker.
//
//  4. Graceful degradation tiers. A tick loop watches global queue
//     occupancy with hysteresis. Sustained load past Tier1Occupancy
//     pauses every tenant's background advising (the service sheds its
//     own optional work first); past Tier2Occupancy it also sheds
//     lowest-priority batch traffic at admission. Health and stats
//     endpoints never queue and are never shed — they read the engines'
//     lock-free published views. When the load drops the tiers step back
//     down and advising resumes.
//
// Shutdown is drain-then-stop: admission closes first (new work is
// rejected with ErrClosed → 503), admitted work drains through the worker
// pool, tenant advisor goroutines stop at an episode boundary via the
// core.Advisor.Stop contract, and every tenant writes a final atomic
// checkpoint (the PR 2 temp-file + fsync + rename path).
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"time"
)

// Shed/admission sentinel errors. The HTTP layer maps the two queue-full
// errors and ErrShedPriority to 429 with a Retry-After header, and
// ErrClosed to 503.
var (
	// ErrTenantQueueFull sheds a request because its tenant's bounded
	// queue is at capacity.
	ErrTenantQueueFull = errors.New("serve: tenant queue full")
	// ErrGlobalQueueFull sheds a request because the server-wide queue
	// bound is reached.
	ErrGlobalQueueFull = errors.New("serve: global queue full")
	// ErrShedPriority sheds a low-priority request while the overload
	// controller is at the shedding tier.
	ErrShedPriority = errors.New("serve: low-priority traffic shed under overload")
	// ErrClosed rejects work because the server is draining for shutdown.
	ErrClosed = errors.New("serve: server is draining")
	// ErrUnknownTenant rejects work for a tenant that does not exist.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrCancelled answers a waiter whose admitted batch the scheduler
	// withdrew before execution — its tenant was deleted, or the drain
	// deadline cleared the queue. The work never ran.
	ErrCancelled = errors.New("serve: batch cancelled before execution")
)

// IsShed reports whether an admission error is a load-shed (mapped to 429)
// as opposed to a hard rejection.
func IsShed(err error) bool {
	return errors.Is(err, ErrTenantQueueFull) || errors.Is(err, ErrGlobalQueueFull) ||
		errors.Is(err, ErrShedPriority)
}

// Config holds the service knobs. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// MaxConcurrent is the worker-pool size — the global execution
	// semaphore. At most this many batches execute at once.
	MaxConcurrent int
	// MaxTenantInflight caps how many workers one tenant may occupy
	// simultaneously (engine batches serialize on the tenant's engine
	// mutex anyway, so values past ~2 only buy queue overlap).
	MaxTenantInflight int
	// MaxTenantQueue bounds each tenant's wait queue; submissions past it
	// are shed with ErrTenantQueueFull.
	MaxTenantQueue int
	// MaxGlobalQueue bounds the sum of all queued requests; submissions
	// past it are shed with ErrGlobalQueueFull.
	MaxGlobalQueue int
	// BatchWorkers is the per-batch engine worker count handed to
	// exec.Engine (0 = GOMAXPROCS, 1 = inline). Service deployments keep
	// it small: cross-tenant parallelism comes from the worker pool.
	BatchWorkers int

	// Tier1Occupancy and Tier2Occupancy are global queue occupancy
	// fractions ([0,1]) that arm degradation tier 1 (pause background
	// advising) and tier 2 (also shed priority-0 traffic).
	Tier1Occupancy float64
	Tier2Occupancy float64
	// TierUpTicks is how many consecutive over-threshold ticks escalate a
	// tier; TierDownTicks how many under-threshold ticks step one back
	// down. Hysteresis keeps the controller from flapping.
	TierUpTicks   int
	TierDownTicks int
	// TickEvery is the overload-controller sampling period.
	TickEvery time.Duration

	// AdviseEvery is the default per-tenant background advising period.
	AdviseEvery time.Duration
	// CheckpointDir, when non-empty, receives one atomic checkpoint per
	// tenant (<dir>/<tenant>.ckpt) at shutdown.
	CheckpointDir string

	// StateDir, when non-empty, makes the server crash-safe: tenant specs
	// are recorded in an fsync'd manifest (written on create, removed on
	// delete), each tenant's advisor state is checkpointed in the
	// background into generation-numbered files, and Recover rebuilds the
	// fleet from this directory after an unclean death.
	StateDir string
	// CheckpointEvery is the per-tenant background checkpoint interval
	// (only meaningful with StateDir; checkpoints land at the next
	// advising episode boundary after the interval elapses).
	CheckpointEvery time.Duration
	// CheckpointKeep is how many checkpoint generations to retain per
	// tenant; older generations are pruned after each successful write.
	CheckpointKeep int
}

// DefaultConfig returns a service envelope sized for the test benchmarks:
// a CPU-bound worker pool, short queues (shed early, retry cheap), and a
// half/nine-tenths occupancy tier ladder.
func DefaultConfig() Config {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	return Config{
		MaxConcurrent:     workers,
		MaxTenantInflight: 2,
		MaxTenantQueue:    16,
		MaxGlobalQueue:    64,
		BatchWorkers:      1,
		Tier1Occupancy:    0.5,
		Tier2Occupancy:    0.9,
		TierUpTicks:       3,
		TierDownTicks:     8,
		TickEvery:         100 * time.Millisecond,
		AdviseEvery:       500 * time.Millisecond,
		CheckpointEvery:   5 * time.Second,
		CheckpointKeep:    3,
	}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.MaxConcurrent < 1:
		return fmt.Errorf("serve: MaxConcurrent %d < 1", c.MaxConcurrent)
	case c.MaxTenantInflight < 1:
		return fmt.Errorf("serve: MaxTenantInflight %d < 1", c.MaxTenantInflight)
	case c.MaxTenantQueue < 1:
		return fmt.Errorf("serve: MaxTenantQueue %d < 1", c.MaxTenantQueue)
	case c.MaxGlobalQueue < 1:
		return fmt.Errorf("serve: MaxGlobalQueue %d < 1", c.MaxGlobalQueue)
	case c.Tier1Occupancy <= 0 || c.Tier1Occupancy > 1:
		return fmt.Errorf("serve: Tier1Occupancy %g outside (0,1]", c.Tier1Occupancy)
	case c.Tier2Occupancy < c.Tier1Occupancy || c.Tier2Occupancy > 1:
		return fmt.Errorf("serve: Tier2Occupancy %g outside [Tier1 %g, 1]", c.Tier2Occupancy, c.Tier1Occupancy)
	case c.TierUpTicks < 1 || c.TierDownTicks < 1:
		return fmt.Errorf("serve: tier hysteresis ticks must be >= 1 (up %d, down %d)", c.TierUpTicks, c.TierDownTicks)
	case c.TickEvery <= 0:
		return fmt.Errorf("serve: TickEvery %v <= 0", c.TickEvery)
	case c.AdviseEvery <= 0:
		return fmt.Errorf("serve: AdviseEvery %v <= 0", c.AdviseEvery)
	}
	if c.StateDir != "" {
		switch {
		case c.CheckpointEvery <= 0:
			return fmt.Errorf("serve: CheckpointEvery %v <= 0 with StateDir set", c.CheckpointEvery)
		case c.CheckpointKeep < 1:
			return fmt.Errorf("serve: CheckpointKeep %d < 1 with StateDir set", c.CheckpointKeep)
		}
	}
	return nil
}
