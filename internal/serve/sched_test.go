package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func schedConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	cfg.MaxTenantInflight = 1000 // dispatch order tests: never bind on inflight
	cfg.MaxTenantQueue = 4
	cfg.MaxGlobalQueue = 6
	return cfg
}

func noopTask() *task { return newTask(0, func() {}) }

// TestAdmissionBounds: per-tenant and global queue caps shed with the
// right sentinel, and a closed scheduler rejects everything.
func TestAdmissionBounds(t *testing.T) {
	s := newScheduler(schedConfig()) // workers not started: nothing drains
	a := s.addTenant("a", 1)
	b := s.addTenant("b", 1)

	for i := 0; i < 4; i++ {
		if err := s.submit(a, noopTask()); err != nil {
			t.Fatalf("submit a[%d]: %v", i, err)
		}
	}
	if err := s.submit(a, noopTask()); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("tenant cap: got %v, want ErrTenantQueueFull", err)
	}
	// The global bound (6) trips before b's tenant bound (4).
	for i := 0; i < 2; i++ {
		if err := s.submit(b, noopTask()); err != nil {
			t.Fatalf("submit b[%d]: %v", i, err)
		}
	}
	if err := s.submit(b, noopTask()); !errors.Is(err, ErrGlobalQueueFull) {
		t.Fatalf("global cap: got %v, want ErrGlobalQueueFull", err)
	}
	if got := s.depth(); got != 6 {
		t.Fatalf("depth = %d, want 6", got)
	}
	if occ := s.occupancy(); occ != 1 {
		t.Fatalf("occupancy = %v, want 1", occ)
	}

	s.close()
	if err := s.submit(b, noopTask()); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed: got %v, want ErrClosed", err)
	}
}

// drainOrder dispatches every queued task synchronously (no workers) and
// returns the tenant ids in dispatch order.
func drainOrder(s *scheduler, n int) []string {
	var order []string
	for i := 0; i < n; i++ {
		tk := s.next()
		if tk == nil {
			break
		}
		order = append(order, tk.tq.id)
		// Return the slot without the wall-clock rate meter noise.
		s.mu.Lock()
		tk.tq.inflight--
		s.mu.Unlock()
	}
	return order
}

// TestWeightedFairDispatch: with saturated queues, a weight-2 tenant gets
// at most its 2/3 share (+ε) of dispatches even though it has far more
// queued work, and the weight-1 tenant is never starved.
func TestWeightedFairDispatch(t *testing.T) {
	cfg := schedConfig()
	cfg.MaxTenantQueue = 200
	cfg.MaxGlobalQueue = 1000
	s := newScheduler(cfg)
	hot := s.addTenant("hot", 2)
	cold := s.addTenant("cold", 1)
	for i := 0; i < 180; i++ { // hot has 3x the backlog
		if err := s.submit(hot, noopTask()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if err := s.submit(cold, noopTask()); err != nil {
			t.Fatal(err)
		}
	}
	window := 90 // cold's queue covers 1/3 of it
	order := drainOrder(s, window)
	hotN := 0
	for _, id := range order {
		if id == "hot" {
			hotN++
		}
	}
	share := float64(hotN) / float64(window)
	want := 2.0 / 3.0
	if share > want+0.05 {
		t.Fatalf("hot tenant got %.2f of dispatches, want <= %.2f + eps", share, want)
	}
	if share < want-0.05 {
		t.Fatalf("hot tenant got %.2f of dispatches, want >= %.2f - eps (weights must matter)", share, want)
	}
	// Interleaving, not phases: cold appears within any 4-dispatch run.
	maxRun, run := 0, 0
	for _, id := range order {
		if id == "hot" {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun > 3 {
		t.Fatalf("hot tenant ran %d consecutive dispatches; fair queueing should interleave", maxRun)
	}
}

// TestIdleTenantVtimeLift: a tenant that was idle while another burned
// virtual time must not monopolize the workers when it wakes up — its
// vtime is lifted to the backlogged minimum at enqueue.
func TestIdleTenantVtimeLift(t *testing.T) {
	cfg := schedConfig()
	cfg.MaxTenantQueue = 200
	cfg.MaxGlobalQueue = 1000
	s := newScheduler(cfg)
	a := s.addTenant("a", 1)
	b := s.addTenant("b", 1)
	for i := 0; i < 50; i++ {
		if err := s.submit(a, noopTask()); err != nil {
			t.Fatal(err)
		}
	}
	drainOrder(s, 30) // a accrues vtime 30 while b sleeps
	for i := 0; i < 50; i++ {
		if err := s.submit(b, noopTask()); err != nil {
			t.Fatal(err)
		}
	}
	order := drainOrder(s, 20)
	bN := 0
	for _, id := range order {
		if id == "b" {
			bN++
		}
	}
	if bN > 12 {
		t.Fatalf("woken tenant got %d of 20 dispatches; banked idle vtime must not buy a monopoly", bN)
	}
	if bN < 8 {
		t.Fatalf("woken tenant got only %d of 20 dispatches; lift must not punish it either", bN)
	}
}

// TestCancelQueuedNeverRuns: a task cancelled while queued is swept, not
// executed, and the queue accounting stays consistent.
func TestCancelQueuedNeverRuns(t *testing.T) {
	s := newScheduler(schedConfig())
	a := s.addTenant("a", 1)
	ran := false
	dead := newTask(0, func() { ran = true })
	live := noopTask()
	if err := s.submit(a, dead); err != nil {
		t.Fatal(err)
	}
	if err := s.submit(a, live); err != nil {
		t.Fatal(err)
	}
	if !dead.CancelQueued() {
		t.Fatal("CancelQueued on a queued task returned false")
	}
	select {
	case <-dead.cancelled:
	default:
		t.Fatal("winning CancelQueued did not close the cancelled channel")
	}
	got := s.next()
	if got != live {
		t.Fatalf("next() returned the cancelled task")
	}
	if ran {
		t.Fatal("cancelled task ran")
	}
	if d := s.depth(); d != 0 {
		t.Fatalf("depth = %d after sweeping, want 0", d)
	}
	if live.CancelQueued() {
		t.Fatal("CancelQueued succeeded on a running task")
	}
}

// TestSubmitAfterRemoveTenant: a submit racing removeTenant must be
// refused — admitting into a deregistered queue would strand the task
// (next() only scans registered queues) and leak global-queue occupancy.
func TestSubmitAfterRemoveTenant(t *testing.T) {
	s := newScheduler(schedConfig())
	a := s.addTenant("a", 1)
	queued := noopTask()
	if err := s.submit(a, queued); err != nil {
		t.Fatal(err)
	}
	s.removeTenant("a")
	select {
	case <-queued.cancelled:
	default:
		t.Fatal("removeTenant did not cancel the queued task")
	}
	if err := s.submit(a, noopTask()); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("submit into removed tenant: %v, want ErrUnknownTenant", err)
	}
	if d := s.depth(); d != 0 {
		t.Fatalf("depth = %d after remove + refused submit, want 0", d)
	}
	// Re-adding the id builds a fresh queue; a stale handle stays refused.
	s.addTenant("a", 1)
	if err := s.submit(a, noopTask()); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("submit via stale queue handle: %v, want ErrUnknownTenant", err)
	}
}

// TestDrainStopsWorkers: close + drain finishes queued work, stops the
// pool, and a second drain is a no-op.
func TestDrainStopsWorkers(t *testing.T) {
	cfg := schedConfig()
	cfg.MaxConcurrent = 3
	cfg.MaxTenantInflight = 3
	s := newScheduler(cfg)
	a := s.addTenant("a", 1)
	s.start()
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		err := s.submit(a, newTask(0, func() {
			time.Sleep(5 * time.Millisecond)
			done <- struct{}{}
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
	s.close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(done) != 4 {
		t.Fatalf("only %d of 4 queued tasks ran before drain returned", len(done))
	}
}
