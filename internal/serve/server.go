package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partadvisor/internal/core"
)

// Server hosts the tenants, the admission-controlled scheduler and the
// overload controller. Build with NewServer, then Start, then serve
// Handler() over HTTP; shut down with BeginDrain + Shutdown.
type Server struct {
	cfg   Config
	sched *scheduler
	ov    *overload

	// reg is the durable tenant manifest (nil without StateDir). ready
	// gates the HTTP request paths: it starts false in StateDir mode and
	// flips true once recovery (or the operator's preload) completes.
	reg      *registry
	ready    atomic.Bool
	recovery atomic.Pointer[RecoveryReport]

	mu      sync.RWMutex
	tenants map[string]*Tenant

	draining atomic.Bool
	start    time.Time

	tickCancel context.CancelFunc
	tickDone   chan struct{}

	// Global request-path counters for /statz.
	served         atomic.Int64
	shedQueue      atomic.Int64
	shedPriority   atomic.Int64
	rejectedClosed atomic.Int64
	deadlineMisses atomic.Int64
}

// NewServer validates the config and builds an idle server. With
// StateDir set it opens (or initializes) the durable tenant manifest —
// a corrupt manifest fails construction with ErrCorruptManifest — and
// the server starts not-ready: call Recover, then MarkReady.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		sched:   newScheduler(cfg),
		ov:      newOverload(cfg),
		tenants: make(map[string]*Tenant),
		start:   time.Now(),
	}
	if cfg.StateDir != "" {
		reg, err := openRegistry(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		s.reg = reg
	}
	s.ready.Store(cfg.StateDir == "")
	return s, nil
}

// Ready reports whether the server accepts tenant and batch requests
// over HTTP. Without StateDir it is always true; with StateDir it flips
// true at MarkReady after recovery.
func (s *Server) Ready() bool { return s.ready.Load() }

// MarkReady opens the HTTP request paths after recovery and preload.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Start launches the worker pool and the overload tick loop.
func (s *Server) Start() {
	s.sched.start()
	ctx, cancel := context.WithCancel(context.Background())
	s.tickCancel = cancel
	s.tickDone = make(chan struct{})
	go func() {
		defer close(s.tickDone)
		tick := time.NewTicker(s.cfg.TickEvery)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				s.ov.Observe(s.sched.occupancy())
			}
		}
	}()
}

// Tier returns the current degradation tier.
func (s *Server) Tier() Tier { return s.ov.Tier() }

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// CreateTenant builds, registers and starts a tenant. Creation is
// synchronous (data generation + offline bootstrap) and does not pass
// through admission control — it is an administrative operation.
func (s *Server) CreateTenant(spec TenantSpec) (*Tenant, error) {
	if s.draining.Load() {
		return nil, ErrClosed
	}
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	_, exists := s.tenants[spec.ID]
	s.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("serve: tenant %q already exists", spec.ID)
	}
	t, err := newTenant(spec, s.cfg)
	if err != nil {
		return nil, err
	}
	if err := s.register(t, true); err != nil {
		return nil, err
	}
	t.startAdvising()
	return t, nil
}

// register installs a built tenant into the server. With persist set it
// also records the spec in the durable manifest inside the same critical
// section, so a crash immediately after CreateTenant returns cannot lose
// the tenant, and a concurrent duplicate create cannot interleave between
// the map insert and the manifest write.
func (s *Server) register(t *Tenant, persist bool) error {
	t.paused = func() bool { return s.ov.Tier() >= TierPauseAdvising || s.draining.Load() }
	s.mu.Lock()
	abort := func(err error) error {
		s.mu.Unlock()
		t.advCancel()
		close(t.advDone) // loop never started
		return err
	}
	if _, raced := s.tenants[t.Spec.ID]; raced {
		return abort(fmt.Errorf("serve: tenant %q already exists", t.Spec.ID))
	}
	if persist && s.reg != nil {
		if err := s.reg.put(t.Spec); err != nil {
			return abort(err)
		}
	}
	t.tq = s.sched.addTenant(t.Spec.ID, t.Spec.Weight)
	s.tenants[t.Spec.ID] = t
	s.mu.Unlock()
	return nil
}

// DeleteTenant stops a tenant's advising loop, cancels its queued work
// and removes it. In-flight batches finish on their own.
func (s *Server) DeleteTenant(id string) error {
	s.mu.Lock()
	t := s.tenants[id]
	delete(s.tenants, id)
	s.mu.Unlock()
	if t == nil {
		return ErrUnknownTenant
	}
	s.sched.removeTenant(id)
	t.stopAdvising()
	if s.reg != nil {
		// Manifest first, then the checkpoint files: a crash in between
		// leaves orphan generations that recovery sweeps, never a manifest
		// entry with no way to rebuild the tenant.
		if err := s.reg.delete(id); err != nil {
			return err
		}
		if t.ckptDir != "" {
			os.RemoveAll(t.ckptDir)
		}
	}
	return nil
}

// TenantRecovery reports one tenant's recovery outcome.
type TenantRecovery struct {
	ID string `json:"id"`
	// Generations is how many checkpoint generation files were found on
	// disk (verified or not).
	Generations int `json:"generations_found"`
	// CorruptSkipped counts generations that failed integrity
	// verification or restore and were skipped on the fallback ladder.
	CorruptSkipped int `json:"corrupt_skipped"`
	// RestoredGen is the generation the tenant resumed from; -1 means a
	// fresh bootstrap (no generation survived verification).
	RestoredGen int64 `json:"restored_generation"`
	// FreshBootstrap is set when no verified checkpoint was usable and
	// the tenant restarted from its deterministic offline bootstrap.
	FreshBootstrap bool `json:"fresh_bootstrap"`
	// Err records a tenant whose rebuild failed outright (bad spec,
	// resource exhaustion); the tenant is absent from the server.
	Err string `json:"error,omitempty"`
}

// RecoveryReport summarizes a Recover pass; it is also served by /readyz
// once the server is ready.
type RecoveryReport struct {
	Tenants     []TenantRecovery `json:"tenants"`
	DurationSec float64          `json:"duration_sec"`
}

// Recovery returns the last Recover report, or nil.
func (s *Server) Recovery() *RecoveryReport { return s.recovery.Load() }

// Recover rebuilds the tenant fleet from the durable manifest. For each
// recorded spec it reconstructs the tenant (deterministic bootstrap),
// then walks its checkpoint generations newest-first and restores the
// first one that passes integrity verification — a corrupt generation is
// skipped, falling back to the previous one, down to a fresh bootstrap
// if none survive. Generation numbering resumes past the newest file
// found (even a corrupt one), so generations stay monotonic across
// restarts. Orphan checkpoint directories with no manifest entry (a
// crash mid-delete) are removed. Call before Start-ing traffic; finish
// with MarkReady.
func (s *Server) Recover() (*RecoveryReport, error) {
	if s.reg == nil {
		return nil, fmt.Errorf("serve: Recover requires StateDir")
	}
	began := time.Now()
	rep := &RecoveryReport{}
	specs := s.reg.list()
	known := make(map[string]bool, len(specs))
	for _, spec := range specs {
		known[spec.ID] = true
		tr := s.recoverTenant(spec)
		rep.Tenants = append(rep.Tenants, tr)
	}
	// Sweep checkpoint directories for tenants the manifest no longer
	// records: DeleteTenant removes the manifest entry first, so a crash
	// between the two leaves exactly this debris.
	if entries, err := os.ReadDir(s.reg.dir + "/" + ckptSubdir); err == nil {
		for _, e := range entries {
			if e.IsDir() && !known[e.Name()] {
				os.RemoveAll(s.reg.ckptDir(e.Name()))
			}
		}
	}
	rep.DurationSec = time.Since(began).Seconds()
	s.recovery.Store(rep)
	return rep, nil
}

// recoverTenant rebuilds one tenant and restores its newest verified
// checkpoint generation.
func (s *Server) recoverTenant(spec TenantSpec) TenantRecovery {
	tr := TenantRecovery{ID: spec.ID, RestoredGen: -1}
	t, err := newTenant(spec, s.cfg)
	if err != nil {
		tr.Err = err.Error()
		return tr
	}
	sweepTempFiles(t.ckptDir)
	gens, err := listGenerations(t.ckptDir)
	if err != nil {
		tr.Err = err.Error()
		t.advCancel()
		close(t.advDone)
		return tr
	}
	tr.Generations = len(gens)
	if len(gens) > 0 {
		// Monotonic numbering: resume past the newest file even if it is
		// corrupt and we restore an older one.
		t.nextGen.Store(gens[0].Gen + 1)
	}
	for _, g := range gens {
		ck, err := core.LoadCheckpoint(g.Path)
		if err != nil {
			tr.CorruptSkipped++
			continue
		}
		if err := t.restoreCheckpoint(ck); err != nil {
			tr.CorruptSkipped++
			continue
		}
		tr.RestoredGen = int64(g.Gen)
		break
	}
	tr.FreshBootstrap = tr.RestoredGen < 0
	t.restoredGen.Store(tr.RestoredGen)
	if err := s.register(t, false); err != nil {
		tr.Err = err.Error()
		return tr
	}
	t.startAdvising()
	return tr
}

// Halt stops the server abruptly without writing any durable state —
// no final checkpoints, no manifest update. It models a crash for the
// recovery tests (the process-level soak uses a real SIGKILL): queued
// work is cancelled, workers stop after their current task, advising
// loops stop at the next episode boundary. The on-disk state afterwards
// is whatever the background checkpointer last persisted.
func (s *Server) Halt() {
	s.draining.Store(true)
	s.sched.close()
	if s.tickCancel != nil {
		s.tickCancel()
		<-s.tickDone
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	s.sched.drain(cancelled)
	for _, t := range s.TenantList() {
		t.stopAdvising()
	}
}

// Tenant looks a tenant up.
func (s *Server) Tenant(id string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	return t, ok
}

// TenantList returns the tenants sorted by id.
func (s *Server) TenantList() []*Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// SubmitBatch admits a batch for a tenant and returns a wait function
// that blocks for the result. Admission errors come back immediately:
// shed errors (IsShed) carry a Retry-After hint via RetryAfter.
func (s *Server) SubmitBatch(ctx context.Context, t *Tenant, names []string, repeat int, limit float64, priority, workers int) (func() (BatchResult, error), error) {
	if s.draining.Load() {
		s.rejectedClosed.Add(1)
		return nil, ErrClosed
	}
	if s.ov.Tier() >= TierShedLowPriority && priority <= 0 {
		t.shed.Add(1)
		s.shedPriority.Add(1)
		return nil, ErrShedPriority
	}
	qs, labels, err := t.resolveQueries(names, repeat, limit)
	if err != nil {
		return nil, err
	}
	if workers == 0 {
		workers = s.cfg.BatchWorkers
	}
	done := make(chan BatchResult, 1)
	tk := newTask(float64(len(qs)), nil)
	tk.run = func() {
		done <- t.execBatch(ctx, qs, labels, workers)
	}
	if err := s.sched.submit(t.tq, tk); err != nil {
		switch {
		case IsShed(err):
			t.shed.Add(1)
			s.shedQueue.Add(1)
		case errors.Is(err, ErrClosed):
			s.rejectedClosed.Add(1)
		}
		return nil, err
	}
	serve := func(res BatchResult) (BatchResult, error) {
		s.served.Add(1)
		if res.DeadlineMiss {
			s.deadlineMisses.Add(1)
		}
		return res, nil
	}
	wait := func() (BatchResult, error) {
		select {
		case res := <-done:
			return serve(res)
		case <-tk.cancelled:
			// The scheduler withdrew the task before a worker claimed it
			// (tenant deleted, or the drain deadline cleared the queue):
			// run() will never execute, so answer now instead of waiting
			// for a result that cannot come.
			return BatchResult{}, ErrCancelled
		case <-ctx.Done():
			if tk.CancelQueued() {
				// Never started: the deadline (or the client) expired while
				// queued. Nothing was charged and nothing executed, so the
				// batch counter is not advanced — only the miss is recorded.
				t.deadlineMisses.Add(1)
				s.deadlineMisses.Add(1)
				s.served.Add(1)
				return BatchResult{Requested: len(qs), DeadlineMiss: true, Cancelled: true}, nil
			}
			// Past queued: either a worker claimed it — the propagated
			// context aborts the batch at the frozen cursor, so its result
			// arrives promptly — or the scheduler's cancel won the race.
			select {
			case res := <-done:
				return serve(res)
			case <-tk.cancelled:
				return BatchResult{}, ErrCancelled
			}
		}
	}
	return wait, nil
}

// RetryAfter returns the current honest Retry-After hint in seconds.
func (s *Server) RetryAfter() int { return s.sched.retryAfter() }

// GlobalStats is the /statz payload.
type GlobalStats struct {
	UptimeSec      float64 `json:"uptime_sec"`
	Tier           int     `json:"tier"`
	TierName       string  `json:"tier_name"`
	Ready          bool    `json:"ready"`
	Draining       bool    `json:"draining"`
	Tenants        int     `json:"tenants"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCap       int     `json:"queue_cap"`
	Inflight       int     `json:"inflight"`
	Workers        int     `json:"workers"`
	Served         int64   `json:"served"`
	ShedQueue      int64   `json:"shed_queue"`
	ShedPriority   int64   `json:"shed_priority"`
	RejectedClosed int64   `json:"rejected_closed"`
	DeadlineMisses int64   `json:"deadline_misses"`
	Dispatched     int64   `json:"dispatched"`
	Completed      int64   `json:"completed"`
	Cancelled      int64   `json:"cancelled"`
	Escalations    int64   `json:"tier_escalations"`
	Recoveries     int64   `json:"tier_recoveries"`
	PausedCycles   int64   `json:"advise_paused_cycles"`
	AdviseCycles   int64   `json:"advise_cycles"`
	RatePerSec     float64 `json:"completion_rate_per_sec"`
	Checkpoints    int64   `json:"checkpoints_written"`
	CheckpointErrs int64   `json:"checkpoint_errors"`
}

// Stats assembles the global statistics snapshot.
func (s *Server) Stats() GlobalStats {
	g := GlobalStats{
		UptimeSec:      time.Since(s.start).Seconds(),
		Tier:           int(s.ov.Tier()),
		TierName:       s.ov.Tier().String(),
		Ready:          s.ready.Load(),
		Draining:       s.draining.Load(),
		QueueDepth:     s.sched.depth(),
		QueueCap:       s.cfg.MaxGlobalQueue,
		Inflight:       s.sched.inflightTotal(),
		Workers:        s.cfg.MaxConcurrent,
		Served:         s.served.Load(),
		ShedQueue:      s.shedQueue.Load(),
		ShedPriority:   s.shedPriority.Load(),
		RejectedClosed: s.rejectedClosed.Load(),
		DeadlineMisses: s.deadlineMisses.Load(),
		Dispatched:     s.sched.dispatched.Load(),
		Completed:      s.sched.completed.Load(),
		Cancelled:      s.sched.cancelled.Load(),
		Escalations:    s.ov.escalations.Load(),
		Recoveries:     s.ov.recoveries.Load(),
		RatePerSec:     s.sched.completionRate(),
	}
	for _, t := range s.TenantList() {
		g.Tenants++
		g.PausedCycles += t.pausedCycles.Load()
		g.AdviseCycles += t.adviseCycles.Load()
		g.Checkpoints += t.ckptWrites.Load()
		g.CheckpointErrs += t.ckptErrs.Load()
	}
	return g
}

// BeginDrain closes admission: new batch submissions (and tenant
// creations) are rejected from now on, while queued and running work
// keeps draining. Health and stats stay available. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.sched.close()
	}
}

// ShutdownReport summarizes a graceful shutdown.
type ShutdownReport struct {
	Drained     bool
	Checkpoints []string
}

// Shutdown drains the scheduler (bounded by ctx), stops the overload
// loop and every tenant's advising goroutine at an episode boundary, and
// writes one atomic checkpoint per tenant when CheckpointDir is set.
// Call BeginDrain (and drain the HTTP listener) first.
func (s *Server) Shutdown(ctx context.Context) (ShutdownReport, error) {
	s.BeginDrain()
	rep := ShutdownReport{Drained: true}
	if err := s.sched.drain(ctx); err != nil {
		rep.Drained = false
	}
	if s.tickCancel != nil {
		s.tickCancel()
		<-s.tickDone
	}
	var firstErr error
	for _, t := range s.TenantList() {
		t.stopAdvising()
		if s.cfg.CheckpointDir != "" {
			path, err := t.checkpoint(s.cfg.CheckpointDir)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			rep.Checkpoints = append(rep.Checkpoints, path)
		}
		if t.ckptDir != "" {
			// A final generation after the loop stopped captures every
			// episode trained since the last background checkpoint.
			path, err := t.saveGeneration()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			rep.Checkpoints = append(rep.Checkpoints, path)
		}
	}
	return rep, firstErr
}
