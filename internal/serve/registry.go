package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The durable state layout under Config.StateDir:
//
//	<state-dir>/manifest.json               the tenant registry
//	<state-dir>/ckpt/<tenant>/gen-%08d.ckpt checkpoint generations
//
// The manifest is the source of truth for which tenants exist: it is
// rewritten atomically (unique temp file + fsync + rename + directory
// fsync) on every create and delete, so the set of tenants survives any
// crash — a kill at any instant leaves either the previous or the new
// manifest intact, never a torn one. A header line carrying the SHA-256
// of the JSON body turns silent bit rot into a loud ErrCorruptManifest
// instead of a half-parsed tenant fleet.
//
// Checkpoint generations are written by each tenant's advising goroutine
// at episode boundaries and pruned to the newest K; recovery walks them
// newest-first and loads the first one that passes the core checkpoint
// integrity check.

// ErrCorruptManifest marks a tenant manifest whose checksum or framing
// does not verify. The manifest is replaced atomically, so this means
// storage-level damage, not a crash artifact — recovery refuses to guess
// and surfaces it to the operator.
var ErrCorruptManifest = errors.New("serve: corrupt tenant manifest")

const (
	manifestName   = "manifest.json"
	manifestHeader = "partadvisor-manifest v1 "
	ckptSubdir     = "ckpt"
)

// manifestBody is the JSON payload under the checksum header.
type manifestBody struct {
	Tenants []TenantSpec `json:"tenants"`
}

// registry is the durable tenant manifest: an in-memory spec map mirrored
// to an fsync'd, atomically-replaced file on every mutation.
type registry struct {
	dir string

	mu    sync.Mutex
	specs map[string]TenantSpec
}

// openRegistry prepares the state directory (creating it and the
// checkpoint subtree), sweeps temp files left by a rename that never
// happened, and loads the manifest if one exists. A crash between
// writing manifest.json.tmp* and the rename leaves the previous manifest
// as the newest committed state — exactly what loading ignores the temp
// debris in favor of.
func openRegistry(dir string) (*registry, error) {
	if err := os.MkdirAll(filepath.Join(dir, ckptSubdir), 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	r := &registry{dir: dir, specs: make(map[string]TenantSpec)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), manifestName+".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	data, err := os.ReadFile(r.path())
	switch {
	case errors.Is(err, os.ErrNotExist):
		return r, nil
	case err != nil:
		return nil, fmt.Errorf("serve: read manifest: %w", err)
	}
	body, err := verifyManifest(data)
	if err != nil {
		return nil, err
	}
	for _, spec := range body.Tenants {
		r.specs[spec.ID] = spec
	}
	return r, nil
}

func (r *registry) path() string { return filepath.Join(r.dir, manifestName) }

// ckptDir returns the checkpoint-generation directory for one tenant.
func (r *registry) ckptDir(id string) string {
	return filepath.Join(r.dir, ckptSubdir, id)
}

// verifyManifest checks the header line's SHA-256 against the body and
// decodes it. Every failure wraps ErrCorruptManifest.
func verifyManifest(data []byte) (*manifestBody, error) {
	nl := strings.IndexByte(string(data), '\n')
	if nl < 0 || !strings.HasPrefix(string(data[:nl]), manifestHeader) {
		return nil, fmt.Errorf("%w: missing header line", ErrCorruptManifest)
	}
	wantSum := strings.TrimSpace(strings.TrimPrefix(string(data[:nl]), manifestHeader))
	body := data[nl+1:]
	if sum := sha256.Sum256(body); hex.EncodeToString(sum[:]) != wantSum {
		return nil, fmt.Errorf("%w: SHA-256 mismatch", ErrCorruptManifest)
	}
	var mb manifestBody
	if err := json.Unmarshal(body, &mb); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptManifest, err)
	}
	return &mb, nil
}

// list returns the registered specs sorted by id.
func (r *registry) list() []TenantSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantSpec, 0, len(r.specs))
	for _, spec := range r.specs {
		out = append(out, spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// put records a tenant spec and persists the manifest before returning:
// once CreateTenant answers 201, the tenant survives a crash.
func (r *registry) put(spec TenantSpec) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, existed := r.specs[spec.ID]
	r.specs[spec.ID] = spec
	if err := r.persistLocked(); err != nil {
		if existed {
			r.specs[spec.ID] = prev
		} else {
			delete(r.specs, spec.ID)
		}
		return err
	}
	return nil
}

// delete removes a tenant spec and persists the manifest.
func (r *registry) delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, existed := r.specs[id]
	if !existed {
		return nil
	}
	delete(r.specs, id)
	if err := r.persistLocked(); err != nil {
		r.specs[id] = prev
		return err
	}
	return nil
}

// persistLocked writes the manifest atomically and durably: unique temp
// file in the same directory, fsync, rename over the live name, fsync
// the directory. Caller holds r.mu.
func (r *registry) persistLocked() error {
	body := manifestBody{Tenants: make([]TenantSpec, 0, len(r.specs))}
	for _, spec := range r.specs {
		body.Tenants = append(body.Tenants, spec)
	}
	sort.Slice(body.Tenants, func(i, j int) bool { return body.Tenants[i].ID < body.Tenants[j].ID })
	payload, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode manifest: %w", err)
	}
	payload = append(payload, '\n')
	sum := sha256.Sum256(payload)
	data := append([]byte(manifestHeader+hex.EncodeToString(sum[:])+"\n"), payload...)

	f, err := os.CreateTemp(r.dir, manifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: manifest temp file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: write manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: write manifest: %w", err)
	}
	if err := os.Rename(tmp, r.path()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: install manifest: %w", err)
	}
	syncDir(r.dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms cannot fsync directories; the rename is already atomic, so
// durability is best-effort there.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// generationFile is one checkpoint generation on disk.
type generationFile struct {
	Gen  uint64
	Path string
}

// generationPath names generation gen inside a tenant's checkpoint
// directory. The fixed-width decimal keeps lexical and numeric order
// identical for human inspection; parsing uses the number.
func generationPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("gen-%08d.ckpt", gen))
}

// listGenerations returns a tenant's checkpoint generations sorted
// newest-first. Temp files and foreign names are ignored. A missing
// directory is an empty list, not an error.
func listGenerations(dir string) ([]generationFile, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []generationFile
	for _, e := range entries {
		var gen uint64
		if _, err := fmt.Sscanf(e.Name(), "gen-%d.ckpt", &gen); err != nil {
			continue
		}
		if e.Name() != fmt.Sprintf("gen-%08d.ckpt", gen) {
			continue
		}
		out = append(out, generationFile{Gen: gen, Path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gen > out[j].Gen })
	return out, nil
}

// sweepTempFiles removes checkpoint temp files left by a write that a
// crash interrupted mid-flight. The atomic rename contract means such
// debris is never the newest committed generation.
func sweepTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".ckpt.tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
