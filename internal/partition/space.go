// Package partition models the partitioning design space of the paper (§3.2):
// every table is either replicated to all nodes or hash-partitioned by one of
// its candidate keys, and co-partitioning of join partners is made explicit
// through edges. The package defines the state representation, the action
// space (partition / replicate / (de)activate an edge) with conflict-free
// edge activation, state transitions, and the binary feature encodings fed
// into the Q-network.
package partition

import (
	"fmt"
	"strings"

	"partadvisor/internal/schema"
)

// Key is an ordered list of attribute names a table can be hash-partitioned
// by. Most keys are single attributes; compound keys (e.g. warehouse-id +
// district-id in TPC-CH) mitigate skew from low-cardinality attributes.
type Key []string

// String renders the key as "a" or "(a,b)".
func (k Key) String() string {
	if len(k) == 1 {
		return k[0]
	}
	return "(" + strings.Join(k, ",") + ")"
}

// Equal reports whether two keys name the same attributes in order.
func (k Key) Equal(o Key) bool {
	if len(k) != len(o) {
		return false
	}
	for i := range k {
		if k[i] != o[i] {
			return false
		}
	}
	return true
}

// TableSpace is the per-table slice of the design space: the candidate
// partitioning keys in a fixed order. Keys[0] is the default (primary key
// where available) used in the initial state s0.
type TableSpace struct {
	Name string
	Keys []Key
}

// KeyIndex returns the index of the given key, or -1.
func (ts *TableSpace) KeyIndex(k Key) int {
	for i, c := range ts.Keys {
		if c.Equal(k) {
			return i
		}
	}
	return -1
}

// singleKeyIndex returns the index of the single-attribute key [attr], or -1.
func (ts *TableSpace) singleKeyIndex(attr string) int {
	for i, c := range ts.Keys {
		if len(c) == 1 && c[0] == attr {
			return i
		}
	}
	return -1
}

// Options configures design-space construction.
type Options struct {
	// KeyFilter, if non-nil, rejects candidate keys. The TPC-CH evaluation
	// of the paper restricts the space so tables "cannot be partitioned by
	// warehouse-id only"; that restriction is expressed here.
	KeyFilter func(table string, key Key) bool
	// ExtraEdges adds join edges beyond those derived from the workload and
	// foreign keys.
	ExtraEdges []schema.JoinEdge
	// DisableEdges removes all co-partitioning edges (and thus all edge
	// actions) from the space — the ablation of the paper's claim that
	// explicit edges reduce exploration of sub-optimal partitionings.
	DisableEdges bool
	// EnableMitigations adds the hot-shard mitigation actions (key salting,
	// hot-key split) per table, two mitigation bits per table block to the
	// state encoding, and two extra kind slots to the action features. Off
	// by default: spaces built without it keep byte-identical encodings,
	// action lists and feature lengths.
	EnableMitigations bool
	// SaltFactor is the bucket spread applied by the salt action (default 4
	// when EnableMitigations is set).
	SaltFactor int
}

// Space is the full partitioning design space for one schema + workload: the
// per-table candidate keys, the co-partitioning edges, and the globally
// indexed action list. It is immutable after construction, so feature
// indices are stable across training and inference.
type Space struct {
	Schema *schema.Schema
	Tables []TableSpace
	Edges  []schema.JoinEdge

	tableIdx map[string]int
	actions  []Action
	// encoding offsets
	tableOffsets []int // offset of table i's block in the state vector
	stateLen     int
	// hot-shard mitigation support (Options.EnableMitigations)
	mitigations bool
	saltFactor  int
}

// NewSpace builds the design space. Candidate keys per table are, in order:
// the first primary-key attribute, every attribute appearing on the table's
// side of a join edge, and the table's declared compound keys — all subject
// to opts.KeyFilter. Edges are kept only when both endpoint attributes
// survived as single-attribute candidate keys (otherwise activating the edge
// could never be consistent).
func NewSpace(sch *schema.Schema, workloadEdges []schema.JoinEdge, opts Options) *Space {
	sp := &Space{
		Schema:      sch,
		tableIdx:    make(map[string]int, len(sch.Tables)),
		mitigations: opts.EnableMitigations,
		saltFactor:  opts.SaltFactor,
	}
	if sp.mitigations && sp.saltFactor <= 0 {
		sp.saltFactor = 4
	}
	allEdges := schema.MergeEdges(sch.ForeignKeyEdges(), workloadEdges, opts.ExtraEdges)

	accept := func(table string, k Key) bool {
		return opts.KeyFilter == nil || opts.KeyFilter(table, k)
	}

	for _, t := range sch.Tables {
		ts := TableSpace{Name: t.Name}
		add := func(k Key) {
			if ts.KeyIndex(k) < 0 && accept(t.Name, k) {
				ts.Keys = append(ts.Keys, k)
			}
		}
		if len(t.PrimaryKey) > 0 {
			add(Key{t.PrimaryKey[0]})
		}
		// Join attributes in schema attribute order for determinism.
		joinAttrs := make(map[string]bool)
		for _, e := range allEdges {
			if a, ok := e.AttrFor(t.Name); ok {
				joinAttrs[a] = true
			}
			// Self-edges never happen (JoinEdges excludes them), but a
			// table can appear on both sides of different edges.
			if e.Table1 == t.Name && e.Table2 == t.Name {
				joinAttrs[e.Attr2] = true
			}
		}
		for _, a := range t.Attributes {
			if joinAttrs[a.Name] {
				add(Key{a.Name})
			}
		}
		for _, ck := range t.CompoundKeys {
			add(Key(ck))
		}
		if len(ts.Keys) == 0 {
			// A table must have at least one key to be partitionable; fall
			// back to its first attribute even under a filter.
			ts.Keys = append(ts.Keys, Key{t.Attributes[0].Name})
		}
		sp.tableIdx[t.Name] = len(sp.Tables)
		sp.Tables = append(sp.Tables, ts)
	}

	if !opts.DisableEdges {
		for _, e := range allEdges {
			i1, ok1 := sp.tableIdx[e.Table1]
			i2, ok2 := sp.tableIdx[e.Table2]
			if !ok1 || !ok2 || e.Table1 == e.Table2 {
				continue
			}
			if sp.Tables[i1].singleKeyIndex(e.Attr1) < 0 || sp.Tables[i2].singleKeyIndex(e.Attr2) < 0 {
				continue
			}
			sp.Edges = append(sp.Edges, e)
		}
	}

	sp.buildActions()
	sp.buildOffsets()
	return sp
}

// TableIndex returns the index of the named table in the space, or -1.
func (sp *Space) TableIndex(name string) int {
	if i, ok := sp.tableIdx[name]; ok {
		return i
	}
	return -1
}

// EdgesFor returns the indices of edges incident to the given table index.
func (sp *Space) EdgesFor(table int) []int {
	name := sp.Tables[table].Name
	var out []int
	for i, e := range sp.Edges {
		if e.Touches(name) {
			out = append(out, i)
		}
	}
	return out
}

func (sp *Space) buildOffsets() {
	sp.tableOffsets = make([]int, len(sp.Tables))
	off := 0
	for i, ts := range sp.Tables {
		sp.tableOffsets[i] = off
		off += 1 + len(ts.Keys) // replicated bit + key one-hot
		if sp.mitigations {
			off += 2 // salted bit + hot-split bit
		}
	}
	sp.stateLen = off + len(sp.Edges)
}

// StateLen returns the length of the binary partitioning-state encoding
// (table blocks plus edge bits, excluding workload frequencies).
func (sp *Space) StateLen() int { return sp.stateLen }

// Mitigations reports whether the space includes the hot-shard mitigation
// actions (Options.EnableMitigations).
func (sp *Space) Mitigations() bool { return sp.mitigations }

// SaltFactor returns the bucket spread the salt action applies (0 when
// mitigations are disabled).
func (sp *Space) SaltFactor() int { return sp.saltFactor }

// Describe renders the design space for logging.
func (sp *Space) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design space over %s: %d tables, %d edges, %d actions, state length %d\n",
		sp.Schema.Name, len(sp.Tables), len(sp.Edges), len(sp.actions), sp.stateLen)
	for _, ts := range sp.Tables {
		keys := make([]string, len(ts.Keys))
		for i, k := range ts.Keys {
			keys[i] = k.String()
		}
		fmt.Fprintf(&b, "  %s: keys [%s]\n", ts.Name, strings.Join(keys, ", "))
	}
	for i, e := range sp.Edges {
		fmt.Fprintf(&b, "  e%d: %s\n", i, e)
	}
	return b.String()
}
