package partition

import (
	"fmt"
	"math/rand"
)

// ActionKind enumerates the action types of the paper (§3.2): partition a
// table by an attribute, replicate a table, or (de)activate a
// co-partitioning edge.
type ActionKind uint8

const (
	ActPartition ActionKind = iota
	ActReplicate
	ActActivateEdge
	ActDeactivateEdge
	// Hot-shard mitigation actions, present only in spaces built with
	// Options.EnableMitigations. They come after the base kinds so base
	// spaces keep identical kind indices and feature widths.
	ActSaltKey
	ActHotSplit
	numActionKinds
)

// numBaseActionKinds is the kind one-hot width of spaces without
// mitigations — the historical width, preserved for encoding stability.
const numBaseActionKinds = ActDeactivateEdge + 1

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActPartition:
		return "partition"
	case ActReplicate:
		return "replicate"
	case ActActivateEdge:
		return "activate-edge"
	case ActDeactivateEdge:
		return "deactivate-edge"
	case ActSaltKey:
		return "salt-key"
	case ActHotSplit:
		return "hot-split"
	}
	return fmt.Sprintf("ActionKind(%d)", uint8(k))
}

// Action is one atomic design change. Table/Key index into the space's
// tables and their candidate keys; Edge indexes into the space's edge list.
type Action struct {
	Kind  ActionKind
	Table int // for ActPartition / ActReplicate
	Key   int // for ActPartition
	Edge  int // for ActActivateEdge / ActDeactivateEdge
}

// buildActions enumerates the global, fixed action list. Indices into this
// list are the output heads of the multi-head Q-network, so the enumeration
// order must be deterministic: per table the replicate action then one
// partition action per candidate key, followed by activate/deactivate pairs
// per edge.
func (sp *Space) buildActions() {
	sp.actions = sp.actions[:0]
	for ti, ts := range sp.Tables {
		sp.actions = append(sp.actions, Action{Kind: ActReplicate, Table: ti})
		for ki := range ts.Keys {
			sp.actions = append(sp.actions, Action{Kind: ActPartition, Table: ti, Key: ki})
		}
	}
	for ei := range sp.Edges {
		sp.actions = append(sp.actions, Action{Kind: ActActivateEdge, Edge: ei})
		sp.actions = append(sp.actions, Action{Kind: ActDeactivateEdge, Edge: ei})
	}
	if sp.mitigations {
		// Mitigation actions are appended after the base enumeration so the
		// base prefix matches a mitigation-free space over the same schema.
		for ti := range sp.Tables {
			sp.actions = append(sp.actions, Action{Kind: ActSaltKey, Table: ti})
			sp.actions = append(sp.actions, Action{Kind: ActHotSplit, Table: ti})
		}
	}
}

// Actions returns the global action list (do not mutate).
func (sp *Space) Actions() []Action { return sp.actions }

// NumActions returns the size of the global action list.
func (sp *Space) NumActions() int { return len(sp.actions) }

// ActionString renders an action with table/key/edge names resolved.
func (sp *Space) ActionString(a Action) string {
	switch a.Kind {
	case ActPartition:
		return fmt.Sprintf("partition %s by %s", sp.Tables[a.Table].Name, sp.Tables[a.Table].Keys[a.Key])
	case ActReplicate:
		return fmt.Sprintf("replicate %s", sp.Tables[a.Table].Name)
	case ActActivateEdge:
		return fmt.Sprintf("activate edge %s", sp.Edges[a.Edge])
	case ActDeactivateEdge:
		return fmt.Sprintf("deactivate edge %s", sp.Edges[a.Edge])
	case ActSaltKey:
		return fmt.Sprintf("salt %s (x%d)", sp.Tables[a.Table].Name, sp.saltFactor)
	case ActHotSplit:
		return fmt.Sprintf("hot-split %s", sp.Tables[a.Table].Name)
	}
	return a.Kind.String()
}

// Valid reports whether the action is applicable in the given state.
// No-op actions (re-partitioning by the current key, re-replicating) are
// invalid so that the agent cannot stall; edge activation requires the
// conflict-free condition of the paper: no other active edge may force a
// different partitioning attribute on either endpoint.
func (sp *Space) Valid(s *State, a Action) bool {
	switch a.Kind {
	case ActPartition:
		d := s.Tables[a.Table]
		// Re-partitioning by the current key is a no-op unless it clears an
		// applied mitigation (the agent's way to undo a salt/hot-split).
		return d.Replicated || d.Key != a.Key || d.Salt > 0 || d.HotSplit
	case ActReplicate:
		return !s.Tables[a.Table].Replicated
	case ActSaltKey:
		d := s.Tables[a.Table]
		return !d.Replicated && d.Salt == 0
	case ActHotSplit:
		d := s.Tables[a.Table]
		return !d.Replicated && !d.HotSplit
	case ActActivateEdge:
		if s.Edges[a.Edge] {
			return false
		}
		e := sp.Edges[a.Edge]
		for _, end := range [2]struct{ table, attr string }{
			{e.Table1, e.Attr1}, {e.Table2, e.Attr2},
		} {
			for oi, on := range s.Edges {
				if !on || oi == a.Edge {
					continue
				}
				if oa, ok := sp.Edges[oi].AttrFor(end.table); ok && oa != end.attr {
					return false
				}
			}
		}
		return true
	case ActDeactivateEdge:
		return s.Edges[a.Edge]
	}
	return false
}

// ValidActions returns the indices (into Actions()) of all actions valid in
// the state. It reuses buf when large enough.
func (sp *Space) ValidActions(s *State, buf []int) []int {
	out := buf[:0]
	for i, a := range sp.actions {
		if sp.Valid(s, a) {
			out = append(out, i)
		}
	}
	return out
}

// Apply returns the successor state of applying the action; it panics when
// the action is invalid (callers must check Valid or use ValidActions).
// Consistency is restored automatically:
//
//   - partitioning a table deactivates incident edges that would now require
//     a different attribute on that table (and clears any mitigation),
//   - replicating a table deactivates all incident edges,
//   - activating an edge re-partitions both endpoints by the edge attributes
//     (clearing their mitigations),
//   - salting or hot-splitting a table deactivates all incident edges: rows
//     sharing a key value no longer co-locate, so co-partitioned local joins
//     are off the table until the mitigation is cleared.
func (sp *Space) Apply(s *State, a Action) *State {
	if !sp.Valid(s, a) {
		panic(fmt.Sprintf("partition: applying invalid action %s to state %s", sp.ActionString(a), s))
	}
	n := s.Clone()
	switch a.Kind {
	case ActPartition:
		n.Tables[a.Table] = TableDesign{Replicated: false, Key: a.Key}
		key := sp.Tables[a.Table].Keys[a.Key]
		name := sp.Tables[a.Table].Name
		for _, ei := range sp.EdgesFor(a.Table) {
			if !n.Edges[ei] {
				continue
			}
			attr, _ := sp.Edges[ei].AttrFor(name)
			if !(len(key) == 1 && key[0] == attr) {
				n.Edges[ei] = false
			}
		}
	case ActReplicate:
		n.Tables[a.Table] = TableDesign{Replicated: true, Key: -1}
		for _, ei := range sp.EdgesFor(a.Table) {
			n.Edges[ei] = false
		}
	case ActActivateEdge:
		e := sp.Edges[a.Edge]
		n.Edges[a.Edge] = true
		for _, end := range [2]struct{ table, attr string }{
			{e.Table1, e.Attr1}, {e.Table2, e.Attr2},
		} {
			ti := sp.TableIndex(end.table)
			ki := sp.Tables[ti].singleKeyIndex(end.attr)
			n.Tables[ti] = TableDesign{Replicated: false, Key: ki}
		}
	case ActDeactivateEdge:
		n.Edges[a.Edge] = false
	case ActSaltKey:
		n.Tables[a.Table].Salt = sp.saltFactor
		for _, ei := range sp.EdgesFor(a.Table) {
			n.Edges[ei] = false
		}
	case ActHotSplit:
		n.Tables[a.Table].HotSplit = true
		for _, ei := range sp.EdgesFor(a.Table) {
			n.Edges[ei] = false
		}
	}
	return n
}

// RandomValidAction draws a uniformly random valid action index.
func (sp *Space) RandomValidAction(s *State, rng *rand.Rand, buf []int) int {
	valid := sp.ValidActions(s, buf)
	if len(valid) == 0 {
		panic("partition: state has no valid actions")
	}
	return valid[rng.Intn(len(valid))]
}

// kindSlots is the width of the action-kind one-hot: the two mitigation
// kinds only occupy feature slots in spaces that can emit them, so base
// spaces keep their historical feature length.
func (sp *Space) kindSlots() int {
	if sp.mitigations {
		return int(numActionKinds)
	}
	return int(numBaseActionKinds)
}

// ActionFeatureLen returns the length of the one-hot action feature vector
// used by the paper-faithful scalar Q(s,a) head: kind ⊕ table ⊕ flattened
// key slot ⊕ edge.
func (sp *Space) ActionFeatureLen() int {
	keySlots := 0
	for _, ts := range sp.Tables {
		keySlots += len(ts.Keys)
	}
	return sp.kindSlots() + len(sp.Tables) + keySlots + len(sp.Edges)
}

// EncodeAction writes the one-hot action features into dst (length
// ActionFeatureLen()).
func (sp *Space) EncodeAction(a Action, dst []float64) {
	if len(dst) != sp.ActionFeatureLen() {
		panic(fmt.Sprintf("partition: EncodeAction dst length %d, want %d", len(dst), sp.ActionFeatureLen()))
	}
	for i := range dst {
		dst[i] = 0
	}
	dst[int(a.Kind)] = 1
	tblBase := sp.kindSlots()
	keyBase := tblBase + len(sp.Tables)
	keySlots := 0
	for _, ts := range sp.Tables {
		keySlots += len(ts.Keys)
	}
	edgeBase := keyBase + keySlots
	switch a.Kind {
	case ActPartition:
		dst[tblBase+a.Table] = 1
		off := 0
		for i := 0; i < a.Table; i++ {
			off += len(sp.Tables[i].Keys)
		}
		dst[keyBase+off+a.Key] = 1
	case ActReplicate, ActSaltKey, ActHotSplit:
		dst[tblBase+a.Table] = 1
	case ActActivateEdge, ActDeactivateEdge:
		dst[edgeBase+a.Edge] = 1
	}
}
