package partition

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"partadvisor/internal/schema"
)

// ssbMini mirrors the paper's Figure 2: lineorder, customer, part with two
// foreign-key edges.
func ssbMini() *schema.Schema {
	attr := func(names ...string) []schema.Attribute {
		out := make([]schema.Attribute, len(names))
		for i, n := range names {
			out[i] = schema.Attribute{Name: n, Width: 8}
		}
		return out
	}
	return schema.New("ssbmini",
		[]*schema.Table{
			{Name: "lineorder", Attributes: attr("lo_key", "lo_custkey", "lo_partkey"), PrimaryKey: []string{"lo_key"}},
			{Name: "customer", Attributes: attr("c_custkey"), PrimaryKey: []string{"c_custkey"}},
			{Name: "part", Attributes: attr("p_partkey"), PrimaryKey: []string{"p_partkey"}},
		},
		[]schema.ForeignKey{
			{FromTable: "lineorder", FromAttr: "lo_custkey", ToTable: "customer", ToAttr: "c_custkey"},
			{FromTable: "lineorder", FromAttr: "lo_partkey", ToTable: "part", ToAttr: "p_partkey"},
		},
	)
}

func miniSpace() *Space {
	return NewSpace(ssbMini(), nil, Options{})
}

func TestSpaceConstruction(t *testing.T) {
	sp := miniSpace()
	if len(sp.Tables) != 3 {
		t.Fatalf("Tables = %v", sp.Tables)
	}
	lo := sp.Tables[sp.TableIndex("lineorder")]
	// Keys: pk (lo_key), then join attrs lo_custkey, lo_partkey.
	if len(lo.Keys) != 3 || lo.Keys[0].String() != "lo_key" || lo.Keys[1].String() != "lo_custkey" {
		t.Fatalf("lineorder keys = %v", lo.Keys)
	}
	if len(sp.Edges) != 2 {
		t.Fatalf("Edges = %v", sp.Edges)
	}
	// Customer has a single key -> 1 partition action + replicate.
	cust := sp.Tables[sp.TableIndex("customer")]
	if len(cust.Keys) != 1 {
		t.Fatalf("customer keys = %v", cust.Keys)
	}
	// Actions: lineorder 1+3, customer 1+1, part 1+1, edges 2*2 = 12.
	if sp.NumActions() != 12 {
		t.Fatalf("NumActions = %d, want 12", sp.NumActions())
	}
	// State length: (1+3) + (1+1) + (1+1) + 2 edges = 10.
	if sp.StateLen() != 10 {
		t.Fatalf("StateLen = %d, want 10", sp.StateLen())
	}
	if sp.TableIndex("nope") != -1 {
		t.Fatalf("TableIndex(nope) != -1")
	}
}

func TestKeyFilter(t *testing.T) {
	sp := NewSpace(ssbMini(), nil, Options{
		KeyFilter: func(table string, k Key) bool {
			return !(table == "lineorder" && k.String() == "lo_custkey")
		},
	})
	lo := sp.Tables[sp.TableIndex("lineorder")]
	for _, k := range lo.Keys {
		if k.String() == "lo_custkey" {
			t.Fatalf("KeyFilter ignored: %v", lo.Keys)
		}
	}
	// The customer edge requires lo_custkey and must have been dropped.
	if len(sp.Edges) != 1 {
		t.Fatalf("Edges = %v, want only the part edge", sp.Edges)
	}
}

func TestCompoundKeysEnterSpace(t *testing.T) {
	sch := ssbMini()
	sch.Tables[0].CompoundKeys = [][]string{{"lo_custkey", "lo_partkey"}}
	sp := NewSpace(sch, nil, Options{})
	lo := sp.Tables[sp.TableIndex("lineorder")]
	found := false
	for _, k := range lo.Keys {
		if len(k) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("compound key missing: %v", lo.Keys)
	}
}

func TestInitialState(t *testing.T) {
	sp := miniSpace()
	s0 := sp.InitialState()
	for i, d := range s0.Tables {
		if d.Replicated || d.Key != 0 {
			t.Fatalf("table %d initial design = %+v", i, d)
		}
	}
	for _, on := range s0.Edges {
		if on {
			t.Fatalf("initial state has active edges")
		}
	}
	if err := s0.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestPaperFigure2Encoding(t *testing.T) {
	// Reproduce Figure 2b/2c: lineorder partitioned by lo_custkey, customer
	// by c_custkey, part replicated, edge e1 (customer) active.
	sp := miniSpace()
	s := sp.InitialState()
	s = sp.Apply(s, Action{Kind: ActActivateEdge, Edge: edgeIndex(t, sp, "customer")})
	s = sp.Apply(s, Action{Kind: ActReplicate, Table: sp.TableIndex("part")})
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	k, ok := s.KeyOf("lineorder")
	if !ok || k.String() != "lo_custkey" {
		t.Fatalf("lineorder key = %v, %v", k, ok)
	}
	k, ok = s.KeyOf("customer")
	if !ok || k.String() != "c_custkey" {
		t.Fatalf("customer key = %v, %v", k, ok)
	}
	if _, ok := s.KeyOf("part"); ok {
		t.Fatalf("part should be replicated")
	}
	enc := s.Encoded()
	// lineorder block: [r, lo_key, lo_custkey, lo_partkey] = [0 0 1 0]
	want := []float64{0, 0, 1, 0 /*lineorder*/, 0, 1 /*customer*/, 1, 0 /*part*/}
	for i, w := range want {
		if enc[i] != w {
			t.Fatalf("encoding[%d] = %v, want %v (full %v)", i, enc[i], w, enc)
		}
	}
	// Edge bits: customer edge active, part edge inactive.
	ci, pi := edgeIndex(t, sp, "customer"), edgeIndex(t, sp, "part")
	base := sp.StateLen() - len(sp.Edges)
	if enc[base+ci] != 1 || enc[base+pi] != 0 {
		t.Fatalf("edge bits = %v", enc[base:])
	}
}

// edgeIndex finds the edge touching the given dimension table.
func edgeIndex(t *testing.T, sp *Space, dim string) int {
	t.Helper()
	for i, e := range sp.Edges {
		if e.Touches(dim) {
			return i
		}
	}
	t.Fatalf("no edge touching %s", dim)
	return -1
}

func TestConflictingEdgeActivationInvalid(t *testing.T) {
	// Paper §3.2: e2 cannot be activated while e1 is active because
	// lineorder would need two different partitioning attributes.
	sp := miniSpace()
	s := sp.InitialState()
	e1 := Action{Kind: ActActivateEdge, Edge: edgeIndex(t, sp, "customer")}
	e2 := Action{Kind: ActActivateEdge, Edge: edgeIndex(t, sp, "part")}
	if !sp.Valid(s, e1) || !sp.Valid(s, e2) {
		t.Fatalf("both edges should be activatable from s0")
	}
	s = sp.Apply(s, e1)
	if sp.Valid(s, e2) {
		t.Fatalf("conflicting edge activation allowed")
	}
	// After deactivating e1, e2 becomes available again.
	s = sp.Apply(s, Action{Kind: ActDeactivateEdge, Edge: e1.Edge})
	if !sp.Valid(s, e2) {
		t.Fatalf("edge not activatable after conflict removed")
	}
}

func TestRepartitionDeactivatesConflictingEdge(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	e1 := edgeIndex(t, sp, "customer")
	s = sp.Apply(s, Action{Kind: ActActivateEdge, Edge: e1})
	// Repartition lineorder by primary key: conflicts with the active edge.
	loIdx := sp.TableIndex("lineorder")
	s = sp.Apply(s, Action{Kind: ActPartition, Table: loIdx, Key: 0})
	if s.Edges[e1] {
		t.Fatalf("conflicting edge stayed active after repartition")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestRepartitionKeepsConsistentEdge(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	e1 := edgeIndex(t, sp, "customer")
	s = sp.Apply(s, Action{Kind: ActActivateEdge, Edge: e1})
	// Re-partitioning lineorder by lo_custkey again is a no-op and invalid.
	loIdx := sp.TableIndex("lineorder")
	loCust := sp.Tables[loIdx].singleKeyIndex("lo_custkey")
	if sp.Valid(s, Action{Kind: ActPartition, Table: loIdx, Key: loCust}) {
		t.Fatalf("no-op partition action should be invalid")
	}
}

func TestReplicateDeactivatesEdges(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	e1 := edgeIndex(t, sp, "customer")
	s = sp.Apply(s, Action{Kind: ActActivateEdge, Edge: e1})
	s = sp.Apply(s, Action{Kind: ActReplicate, Table: sp.TableIndex("customer")})
	if s.Edges[e1] {
		t.Fatalf("edge survives endpoint replication")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestValidityBasics(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	rep := Action{Kind: ActReplicate, Table: 0}
	if !sp.Valid(s, rep) {
		t.Fatalf("replicate should be valid initially")
	}
	s = sp.Apply(s, rep)
	if sp.Valid(s, rep) {
		t.Fatalf("double replicate should be invalid")
	}
	// Deactivating an inactive edge is invalid.
	if sp.Valid(s, Action{Kind: ActDeactivateEdge, Edge: 0}) {
		t.Fatalf("deactivate of inactive edge should be invalid")
	}
	// Partitioning a replicated table is valid with any key.
	if !sp.Valid(s, Action{Kind: ActPartition, Table: 0, Key: 0}) {
		t.Fatalf("partition of replicated table should be valid")
	}
}

func TestApplyPanicsOnInvalid(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	defer func() {
		if recover() == nil {
			t.Fatalf("Apply did not panic on invalid action")
		}
	}()
	sp.Apply(s, Action{Kind: ActPartition, Table: 0, Key: 0}) // no-op
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	before := s.Signature()
	_ = sp.Apply(s, Action{Kind: ActReplicate, Table: 0})
	if s.Signature() != before {
		t.Fatalf("Apply mutated input state")
	}
}

func TestSignatures(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	s2 := sp.Apply(s, Action{Kind: ActReplicate, Table: sp.TableIndex("part")})
	if s.Signature() == s2.Signature() {
		t.Fatalf("signatures should differ")
	}
	if !strings.Contains(s2.Signature(), "part=R") {
		t.Fatalf("Signature = %q", s2.Signature())
	}
	// TableSignature covers only requested tables.
	ts := s2.TableSignature([]string{"lineorder", "customer"})
	if strings.Contains(ts, "part") {
		t.Fatalf("TableSignature leaked other tables: %q", ts)
	}
	// Edge-only difference: same layout, same signature.
	e1 := edgeIndex(t, sp, "customer")
	sEdge := s.Clone()
	// Build a state with same layout but note: activating an edge changes
	// layout, so construct via Edges toggle on a layout where it is
	// consistent.
	loIdx := sp.TableIndex("lineorder")
	loCust := sp.Tables[loIdx].singleKeyIndex("lo_custkey")
	sEdge = sp.Apply(sEdge, Action{Kind: ActPartition, Table: loIdx, Key: loCust})
	viaEdge := sp.Apply(s, Action{Kind: ActActivateEdge, Edge: e1})
	if !sEdge.SameLayout(viaEdge) {
		t.Fatalf("layouts differ: %s vs %s", sEdge, viaEdge)
	}
	if sEdge.Signature() != viaEdge.Signature() {
		t.Fatalf("signatures differ for same layout")
	}
	if sEdge.Equal(viaEdge) {
		t.Fatalf("Equal should see the differing edge bit")
	}
}

func TestDiffTables(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	s2 := sp.Apply(s, Action{Kind: ActReplicate, Table: sp.TableIndex("part")})
	d := s.DiffTables(s2)
	if len(d) != 1 || d[0] != "part" {
		t.Fatalf("DiffTables = %v", d)
	}
	if got := s.DiffTables(s); len(got) != 0 {
		t.Fatalf("self diff = %v", got)
	}
}

func TestActionFeatures(t *testing.T) {
	sp := miniSpace()
	n := sp.ActionFeatureLen()
	// kinds(4) + tables(3) + keyslots(3+1+1) + edges(2) = 14.
	if n != 14 {
		t.Fatalf("ActionFeatureLen = %d, want 14", n)
	}
	dst := make([]float64, n)
	sp.EncodeAction(Action{Kind: ActPartition, Table: 0, Key: 2}, dst)
	if dst[int(ActPartition)] != 1 {
		t.Fatalf("kind bit missing: %v", dst)
	}
	if dst[4+0] != 1 {
		t.Fatalf("table bit missing: %v", dst)
	}
	if dst[4+3+2] != 1 {
		t.Fatalf("key bit missing: %v", dst)
	}
	sum := 0.0
	for _, v := range dst {
		sum += v
	}
	if sum != 3 {
		t.Fatalf("partition action should set 3 bits, got %v: %v", sum, dst)
	}
	sp.EncodeAction(Action{Kind: ActActivateEdge, Edge: 1}, dst)
	if dst[n-1] != 1 {
		t.Fatalf("edge bit missing: %v", dst)
	}
}

func TestRandomWalkPreservesInvariants(t *testing.T) {
	// Property: any sequence of valid actions keeps states consistent and
	// encodable, and ValidActions never returns an inapplicable action.
	sp := miniSpace()
	rng := rand.New(rand.NewSource(7))
	var buf []int
	for trial := 0; trial < 30; trial++ {
		s := sp.InitialState()
		for step := 0; step < 40; step++ {
			ai := sp.RandomValidAction(s, rng, buf)
			a := sp.Actions()[ai]
			if !sp.Valid(s, a) {
				t.Fatalf("RandomValidAction returned invalid action %v", a)
			}
			s = sp.Apply(s, a)
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v (state %s)", step, err, s)
			}
			enc := s.Encoded()
			// Exactly one bit per table block plus edge bits.
			ones := 0.0
			for _, v := range enc {
				ones += v
			}
			activeEdges := 0.0
			for _, on := range s.Edges {
				if on {
					activeEdges++
				}
			}
			if ones != float64(len(sp.Tables))+activeEdges {
				t.Fatalf("encoding bit count %v, want %v", ones, float64(len(sp.Tables))+activeEdges)
			}
		}
	}
}

func TestAnyStateReachableWithinTableCountActions(t *testing.T) {
	// The paper argues any partitioning is reachable within |T| actions
	// from s0 (one partition-or-replicate per table). Verify for a random
	// sample of layouts.
	sp := miniSpace()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		target := sp.InitialState().Clone()
		for i := range target.Tables {
			if rng.Intn(4) == 0 {
				target.Tables[i] = TableDesign{Replicated: true, Key: -1}
			} else {
				target.Tables[i] = TableDesign{Key: rng.Intn(len(sp.Tables[i].Keys))}
			}
		}
		s := sp.InitialState()
		steps := 0
		for i, want := range target.Tables {
			if s.Tables[i] == want {
				continue
			}
			var a Action
			if want.Replicated {
				a = Action{Kind: ActReplicate, Table: i}
			} else {
				a = Action{Kind: ActPartition, Table: i, Key: want.Key}
			}
			if !sp.Valid(s, a) {
				t.Fatalf("direct action invalid: %v", sp.ActionString(a))
			}
			s = sp.Apply(s, a)
			steps++
		}
		if !s.SameLayout(target) {
			t.Fatalf("did not reach target layout")
		}
		if steps > len(sp.Tables) {
			t.Fatalf("needed %d steps for %d tables", steps, len(sp.Tables))
		}
	}
}

func TestActionKindString(t *testing.T) {
	for k, want := range map[ActionKind]string{
		ActPartition: "partition", ActReplicate: "replicate",
		ActActivateEdge: "activate-edge", ActDeactivateEdge: "deactivate-edge",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if got := ActionKind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind String = %q", got)
	}
}

func TestDescribeAndStrings(t *testing.T) {
	sp := miniSpace()
	d := sp.Describe()
	for _, want := range []string{"design space", "lineorder", "e0"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q: %s", want, d)
		}
	}
	s := sp.Apply(sp.InitialState(), Action{Kind: ActReplicate, Table: sp.TableIndex("part")})
	if !strings.Contains(s.String(), "part: REPLICATE") {
		t.Fatalf("State String = %q", s.String())
	}
	if got := sp.ActionString(Action{Kind: ActReplicate, Table: 0}); got != "replicate lineorder" {
		t.Fatalf("ActionString = %q", got)
	}
}

func TestEncodePanicsOnWrongLength(t *testing.T) {
	sp := miniSpace()
	s := sp.InitialState()
	defer func() {
		if recover() == nil {
			t.Fatalf("Encode accepted wrong-length dst")
		}
	}()
	s.Encode(make([]float64, 3))
}

func TestEncodingInjectiveOverLayouts(t *testing.T) {
	// Property: two states with different physical layouts never share an
	// encoding (the Q-network must be able to tell them apart).
	sp := miniSpace()
	rng := rand.New(rand.NewSource(17))
	seen := map[string]string{} // encoding -> signature
	var buf []int
	st := sp.InitialState()
	for step := 0; step < 500; step++ {
		enc := fmt.Sprintf("%v", st.Encoded())
		sig := st.Signature() + "/" + fmt.Sprintf("%v", st.Edges)
		if prev, ok := seen[enc]; ok && prev != sig {
			t.Fatalf("encoding collision: %q vs %q", prev, sig)
		}
		seen[enc] = sig
		ai := sp.RandomValidAction(st, rng, buf)
		st = sp.Apply(st, sp.Actions()[ai])
	}
}

func TestStateAccessors(t *testing.T) {
	sp := miniSpace()
	st := sp.InitialState()
	if st.Space() != sp {
		t.Fatalf("Space accessor broken")
	}
	d := st.Design("customer")
	if d.Replicated || d.Key != 0 {
		t.Fatalf("Design = %+v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Design accepted unknown table")
		}
	}()
	st.Design("nope")
}

func TestActionStringAllKinds(t *testing.T) {
	sp := miniSpace()
	cases := []Action{
		{Kind: ActPartition, Table: 0, Key: 1},
		{Kind: ActReplicate, Table: 1},
		{Kind: ActActivateEdge, Edge: 0},
		{Kind: ActDeactivateEdge, Edge: 1},
	}
	for _, a := range cases {
		if s := sp.ActionString(a); s == "" {
			t.Fatalf("empty ActionString for %v", a)
		}
	}
	if s := sp.ActionString(Action{Kind: ActionKind(9)}); !strings.Contains(s, "9") {
		t.Fatalf("unknown kind ActionString = %q", s)
	}
}
