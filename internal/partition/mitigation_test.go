package partition

import (
	"math/rand"
	"strings"
	"testing"
)

func mitSpace() *Space {
	return NewSpace(ssbMini(), nil, Options{EnableMitigations: true})
}

// Enabling mitigations appends exactly two actions per table after the base
// enumeration and widens each table's encoding block by two bits, leaving
// the base prefix identical to a mitigation-free space.
func TestMitigationSpaceShape(t *testing.T) {
	base := miniSpace()
	sp := mitSpace()
	if !sp.Mitigations() || base.Mitigations() {
		t.Fatalf("Mitigations flag: base=%v mit=%v", base.Mitigations(), sp.Mitigations())
	}
	if sp.SaltFactor() != 4 {
		t.Fatalf("default SaltFactor = %d, want 4", sp.SaltFactor())
	}
	if got, want := sp.NumActions(), base.NumActions()+2*len(sp.Tables); got != want {
		t.Fatalf("NumActions = %d, want %d", got, want)
	}
	for i, a := range base.Actions() {
		if sp.Actions()[i] != a {
			t.Fatalf("action %d differs: %+v vs base %+v", i, sp.Actions()[i], a)
		}
	}
	for i := base.NumActions(); i < sp.NumActions(); i++ {
		k := sp.Actions()[i].Kind
		if k != ActSaltKey && k != ActHotSplit {
			t.Fatalf("appended action %d has kind %s", i, k)
		}
	}
	if got, want := sp.StateLen(), base.StateLen()+2*len(sp.Tables); got != want {
		t.Fatalf("StateLen = %d, want %d", got, want)
	}
	if got, want := sp.ActionFeatureLen(), base.ActionFeatureLen()+2; got != want {
		t.Fatalf("ActionFeatureLen = %d, want %d", got, want)
	}
}

func TestMitigationValidApply(t *testing.T) {
	sp := mitSpace()
	lo := sp.TableIndex("lineorder")
	s := sp.InitialState()

	salt := Action{Kind: ActSaltKey, Table: lo}
	split := Action{Kind: ActHotSplit, Table: lo}
	if !sp.Valid(s, salt) || !sp.Valid(s, split) {
		t.Fatalf("mitigations invalid on hash-partitioned table")
	}

	s = sp.Apply(s, salt)
	if d := s.Tables[lo]; d.Salt != sp.SaltFactor() || d.HotSplit {
		t.Fatalf("after salt: %+v", d)
	}
	if sp.Valid(s, salt) {
		t.Fatalf("re-salting already-salted table is valid")
	}
	s = sp.Apply(s, split)
	if d := s.Tables[lo]; d.Salt != sp.SaltFactor() || !d.HotSplit {
		t.Fatalf("after salt+split: %+v", d)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}

	// Re-partitioning by the current key is the undo: normally a no-op (and
	// invalid), it becomes valid and clears both mitigations.
	clear := Action{Kind: ActPartition, Table: lo, Key: s.Tables[lo].Key}
	if !sp.Valid(s, clear) {
		t.Fatalf("clearing re-partition invalid on mitigated table")
	}
	s = sp.Apply(s, clear)
	if d := s.Tables[lo]; d.Salt != 0 || d.HotSplit {
		t.Fatalf("mitigations survived re-partition: %+v", d)
	}
	if sp.Valid(s, clear) {
		t.Fatalf("same-key re-partition valid without a mitigation to clear")
	}

	// Replicated tables cannot be salted or split.
	s = sp.Apply(s, Action{Kind: ActReplicate, Table: lo})
	if sp.Valid(s, salt) || sp.Valid(s, split) {
		t.Fatalf("mitigation valid on replicated table")
	}
}

// Salting or splitting an edge endpoint breaks co-location, so Apply must
// deactivate incident edges; activating an edge clears the endpoint
// mitigations again.
func TestMitigationEdgeConsistency(t *testing.T) {
	sp := mitSpace()
	lo := sp.TableIndex("lineorder")
	e1 := edgeIndex(t, sp, "customer")

	s := sp.Apply(sp.InitialState(), Action{Kind: ActActivateEdge, Edge: e1})
	s = sp.Apply(s, Action{Kind: ActSaltKey, Table: lo})
	if s.Edges[e1] {
		t.Fatalf("edge survived salting its endpoint")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}

	s = sp.Apply(s, Action{Kind: ActActivateEdge, Edge: e1})
	if d := s.Tables[lo]; d.Salt != 0 || d.HotSplit {
		t.Fatalf("edge activation kept mitigation: %+v", d)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}

	// A hand-built inconsistent state (active edge + salted endpoint) must
	// fail the invariant check.
	bad := s.Clone()
	bad.Tables[lo].Salt = 2
	if err := bad.CheckInvariants(); err == nil {
		t.Fatalf("invariants accepted active edge with salted endpoint")
	}
}

func TestMitigationEncodingAndSignature(t *testing.T) {
	sp := mitSpace()
	lo := sp.TableIndex("lineorder")
	s := sp.Apply(sp.InitialState(), Action{Kind: ActSaltKey, Table: lo})
	s = sp.Apply(s, Action{Kind: ActHotSplit, Table: lo})

	enc := s.Encoded()
	mit := sp.tableOffsets[lo] + 1 + len(sp.Tables[lo].Keys)
	if enc[mit] != 1 || enc[mit+1] != 1 {
		t.Fatalf("mitigation bits not set: %v", enc[:sp.tableOffsets[lo+1]])
	}
	plain := sp.InitialState().Encoded()
	if plain[mit] != 0 || plain[mit+1] != 0 {
		t.Fatalf("mitigation bits set on plain state")
	}

	sig := s.Signature()
	if !strings.Contains(sig, "+S4") || !strings.Contains(sig, "+HS") {
		t.Fatalf("signature misses mitigation markers: %s", sig)
	}
	if got := s.String(); !strings.Contains(got, "+SALT(4)") || !strings.Contains(got, "+HOTSPLIT") {
		t.Fatalf("String misses mitigation markers: %s", got)
	}

	// Action features: mitigation actions one-hot their kind and table.
	dst := make([]float64, sp.ActionFeatureLen())
	sp.EncodeAction(Action{Kind: ActHotSplit, Table: lo}, dst)
	if dst[int(ActHotSplit)] != 1 || dst[int(numActionKinds)+lo] != 1 {
		t.Fatalf("hot-split action features wrong: %v", dst)
	}
	if got := sp.ActionString(Action{Kind: ActSaltKey, Table: lo}); got != "salt lineorder (x4)" {
		t.Fatalf("ActionString = %q", got)
	}
}

// The full valid-action walk must keep invariants through mitigation actions
// too (mirrors the base random-walk property test).
func TestMitigationRandomWalkInvariants(t *testing.T) {
	sp := mitSpace()
	s := sp.InitialState()
	rng := rand.New(rand.NewSource(7))
	var buf []int
	sawSalt, sawSplit := false, false
	for step := 0; step < 300; step++ {
		ai := sp.RandomValidAction(s, rng, buf)
		a := sp.Actions()[ai]
		sawSalt = sawSalt || a.Kind == ActSaltKey
		sawSplit = sawSplit || a.Kind == ActHotSplit
		s = sp.Apply(s, a)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%s): %v", step, sp.ActionString(a), err)
		}
	}
	if !sawSalt || !sawSplit {
		t.Fatalf("walk never drew mitigation actions (salt=%v split=%v)", sawSalt, sawSplit)
	}
}
