package partition

import (
	"fmt"
	"strings"
)

// TableDesign is the physical design of one table: replicated to every node,
// or hash-partitioned by the candidate key with the given index, optionally
// with a hot-shard mitigation applied on top of the hash layout.
type TableDesign struct {
	Replicated bool
	// Key indexes into the table's TableSpace.Keys; it is meaningful only
	// when Replicated is false.
	Key int
	// Salt > 0 spreads each key's rows across Salt adjacent hash buckets —
	// the key-salting mitigation for hot shards. Only meaningful for
	// hash-partitioned tables, and only present in spaces built with
	// Options.EnableMitigations.
	Salt int
	// HotSplit splits the hottest key value of the partitioning column
	// round-robin across all nodes while the rest hash normally — the
	// hot-key-split mitigation. Same availability rules as Salt.
	HotSplit bool
}

// State is one point of the design space: a physical design per table plus
// the activation bits of the co-partitioning edges. States are immutable;
// Apply returns a modified copy.
type State struct {
	space  *Space
	Tables []TableDesign
	Edges  []bool
}

// InitialState returns s0: every table hash-partitioned by its default key
// (Keys[0], the primary key where available), no table replicated, no edge
// active. Training episodes and inference both start here (paper §4.1, §6).
func (sp *Space) InitialState() *State {
	st := &State{space: sp, Tables: make([]TableDesign, len(sp.Tables)), Edges: make([]bool, len(sp.Edges))}
	for i := range st.Tables {
		st.Tables[i] = TableDesign{Replicated: false, Key: 0}
	}
	return st
}

// Space returns the design space the state belongs to.
func (s *State) Space() *Space { return s.space }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	t := make([]TableDesign, len(s.Tables))
	copy(t, s.Tables)
	e := make([]bool, len(s.Edges))
	copy(e, s.Edges)
	return &State{space: s.space, Tables: t, Edges: e}
}

// Design returns the design of the named table.
func (s *State) Design(table string) TableDesign {
	i := s.space.TableIndex(table)
	if i < 0 {
		panic(fmt.Sprintf("partition: unknown table %q", table))
	}
	return s.Tables[i]
}

// KeyOf returns the partitioning key of the named table and false when the
// table is replicated.
func (s *State) KeyOf(table string) (Key, bool) {
	i := s.space.TableIndex(table)
	if i < 0 {
		panic(fmt.Sprintf("partition: unknown table %q", table))
	}
	d := s.Tables[i]
	if d.Replicated {
		return nil, false
	}
	return s.space.Tables[i].Keys[d.Key], true
}

// Equal reports whether two states describe the same physical layout *and*
// edge activation. For layout-only comparison use SameLayout.
func (s *State) Equal(o *State) bool {
	if len(s.Tables) != len(o.Tables) || len(s.Edges) != len(o.Edges) {
		return false
	}
	for i := range s.Tables {
		if s.Tables[i] != o.Tables[i] {
			return false
		}
	}
	for i := range s.Edges {
		if s.Edges[i] != o.Edges[i] {
			return false
		}
	}
	return true
}

// SameLayout reports whether two states deploy identically (edge bits are
// bookkeeping for the agent and do not affect the physical layout).
func (s *State) SameLayout(o *State) bool {
	if len(s.Tables) != len(o.Tables) {
		return false
	}
	for i := range s.Tables {
		if s.Tables[i] != o.Tables[i] {
			return false
		}
	}
	return true
}

// Signature returns a canonical string of the physical layout, the key of
// the online trainer's partitioning-level caches.
func (s *State) Signature() string {
	var b strings.Builder
	for i, d := range s.Tables {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(s.tableSig(i, d))
	}
	return b.String()
}

// TableSignature returns the canonical sub-signature covering only the given
// tables. The paper's Query Runtime Cache (§4.2) keys each query's runtime
// by the state combination of exactly the tables the query touches.
func (s *State) TableSignature(tables []string) string {
	var b strings.Builder
	for _, name := range tables {
		i := s.space.TableIndex(name)
		if i < 0 {
			panic(fmt.Sprintf("partition: unknown table %q", name))
		}
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString(s.tableSig(i, s.Tables[i]))
	}
	return b.String()
}

func (s *State) tableSig(i int, d TableDesign) string {
	if d.Replicated {
		return s.space.Tables[i].Name + "=R"
	}
	sig := s.space.Tables[i].Name + "=H(" + s.space.Tables[i].Keys[d.Key].String() + ")"
	if d.Salt > 0 {
		sig += fmt.Sprintf("+S%d", d.Salt)
	}
	if d.HotSplit {
		sig += "+HS"
	}
	return sig
}

// DiffTables returns the names of tables whose physical design differs
// between the two states — the tables lazy repartitioning must touch.
func (s *State) DiffTables(o *State) []string {
	var out []string
	for i := range s.Tables {
		if s.Tables[i] != o.Tables[i] {
			out = append(out, s.space.Tables[i].Name)
		}
	}
	return out
}

// Encode writes the binary feature encoding of the paper's Figure 2 into
// dst: per table the bit vector (replicated, key one-hot...), then the edge
// bits. dst must have length space.StateLen().
func (s *State) Encode(dst []float64) {
	if len(dst) != s.space.stateLen {
		panic(fmt.Sprintf("partition: Encode dst length %d, want %d", len(dst), s.space.stateLen))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, d := range s.Tables {
		off := s.space.tableOffsets[i]
		if d.Replicated {
			dst[off] = 1
		} else {
			dst[off+1+d.Key] = 1
			if s.space.mitigations {
				// Two trailing mitigation bits per table block (salted,
				// hot-split) — present only in mitigation-enabled spaces so
				// existing encodings stay byte-identical.
				mit := off + 1 + len(s.space.Tables[i].Keys)
				if d.Salt > 0 {
					dst[mit] = 1
				}
				if d.HotSplit {
					dst[mit+1] = 1
				}
			}
		}
	}
	base := s.space.stateLen - len(s.Edges)
	for i, on := range s.Edges {
		if on {
			dst[base+i] = 1
		}
	}
}

// Encoded allocates and returns the feature encoding.
func (s *State) Encoded() []float64 {
	dst := make([]float64, s.space.stateLen)
	s.Encode(dst)
	return dst
}

// CheckInvariants verifies the edge-consistency invariant: every active edge
// implies its endpoints are hash-partitioned by the edge attributes. It is
// used by tests and property checks.
func (s *State) CheckInvariants() error {
	for i, on := range s.Edges {
		if !on {
			continue
		}
		e := s.space.Edges[i]
		for _, end := range []struct{ table, attr string }{
			{e.Table1, e.Attr1}, {e.Table2, e.Attr2},
		} {
			k, ok := s.KeyOf(end.table)
			if !ok {
				return fmt.Errorf("edge %d (%s) active but table %s is replicated", i, e, end.table)
			}
			if !(len(k) == 1 && k[0] == end.attr) {
				return fmt.Errorf("edge %d (%s) active but table %s is partitioned by %s", i, e, end.table, k)
			}
			d := s.Tables[s.space.TableIndex(end.table)]
			if d.Salt > 0 || d.HotSplit {
				return fmt.Errorf("edge %d (%s) active but table %s has a hot-shard mitigation (salt=%d hotSplit=%v)",
					i, e, end.table, d.Salt, d.HotSplit)
			}
		}
	}
	return nil
}

// String renders the state for logs and experiment output.
func (s *State) String() string {
	var b strings.Builder
	for i, d := range s.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		name := s.space.Tables[i].Name
		if d.Replicated {
			fmt.Fprintf(&b, "%s: REPLICATE", name)
		} else {
			fmt.Fprintf(&b, "%s: HASH%s", name, keyParen(s.space.Tables[i].Keys[d.Key]))
			if d.Salt > 0 {
				fmt.Fprintf(&b, "+SALT(%d)", d.Salt)
			}
			if d.HotSplit {
				b.WriteString("+HOTSPLIT")
			}
		}
	}
	var act []string
	for i, on := range s.Edges {
		if on {
			act = append(act, fmt.Sprintf("e%d", i))
		}
	}
	if len(act) > 0 {
		fmt.Fprintf(&b, " [edges %s]", strings.Join(act, ","))
	}
	return b.String()
}

func keyParen(k Key) string {
	return "(" + strings.Join(k, ",") + ")"
}
