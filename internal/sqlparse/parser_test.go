package sqlparse

import (
	"strings"
	"testing"

	"partadvisor/internal/stats"
	"partadvisor/internal/valenc"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b.c FROM t WHERE x >= 10 AND y <> 'abc' -- comment\n;")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "b", ".", "c", "FROM", "t", "WHERE", "x", ">=", "10", "AND", "y", "<>", "abc", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("token texts = %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatalf("missing EOF token")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex("a != b <= c < d > e")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	ops := []string{}
	for _, tk := range toks {
		if tk.kind == tokSymbol {
			ops = append(ops, tk.text)
		}
	}
	want := []string{"<>", "<=", "<", ">"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatalf("lex accepted unterminated string")
	}
	if _, err := lex("a ! b"); err == nil {
		t.Fatalf("lex accepted lone '!'")
	}
	if _, err := lex("a # b"); err == nil {
		t.Fatalf("lex accepted '#'")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("SELECT * FROM customer c, lineorder l WHERE l.lo_custkey = c.c_custkey;")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.From) != 2 || stmt.From[0].Alias != "c" || stmt.From[1].Table != "lineorder" {
		t.Fatalf("From = %+v", stmt.From)
	}
	cmp, ok := stmt.Where.(*CmpExpr)
	if !ok {
		t.Fatalf("Where = %T, want CmpExpr", stmt.Where)
	}
	if !cmp.Left.IsCol() || cmp.Left.Col.Qualifier != "l" || cmp.Left.Col.Column != "lo_custkey" {
		t.Fatalf("Left = %+v", cmp.Left)
	}
}

func TestParseSelectListAggregates(t *testing.T) {
	stmt, err := Parse("SELECT sum(lo_extendedprice * lo_discount) AS revenue, count(*) FROM lineorder")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.SelectList) != 2 {
		t.Fatalf("SelectList = %v", stmt.SelectList)
	}
	if !strings.Contains(stmt.SelectList[0], "sum") {
		t.Fatalf("SelectList[0] = %q", stmt.SelectList[0])
	}
}

func TestParseJoinOnSyntax(t *testing.T) {
	stmt, err := Parse("SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w WHERE a.v > 5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.From) != 3 {
		t.Fatalf("From = %+v", stmt.From)
	}
	and, ok := stmt.Where.(*AndExpr)
	if !ok || len(and.Operands) != 2 {
		t.Fatalf("Where = %#v", stmt.Where)
	}
}

func TestParseLeftOuterJoin(t *testing.T) {
	stmt, err := Parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("From = %+v", stmt.From)
	}
}

func TestParseClauses(t *testing.T) {
	stmt, err := Parse(`SELECT d_year, sum(lo_revenue)
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND d_year BETWEEN 1992 AND 1997
		GROUP BY d_year
		HAVING sum(lo_revenue) > 100
		ORDER BY d_year
		LIMIT 10`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0] != "d_year" {
		t.Fatalf("GroupBy = %v", stmt.GroupBy)
	}
	if len(stmt.OrderBy) != 1 {
		t.Fatalf("OrderBy = %v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Fatalf("Limit = %d", stmt.Limit)
	}
}

func TestParsePredicates(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM t WHERE a = 1 AND b <> 2 AND c < 3 AND d <= 4 AND e > 5 AND f >= 6
		AND g BETWEEN 7 AND 8 AND h IN (9, 10, 11) AND i = 'str' AND j IS NOT NULL AND NOT k = 12`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and, ok := stmt.Where.(*AndExpr)
	if !ok {
		t.Fatalf("Where = %T", stmt.Where)
	}
	if len(and.Operands) != 11 {
		t.Fatalf("got %d conjuncts, want 11", len(and.Operands))
	}
	// String literal encodes deterministically.
	cmp := and.Operands[8].(*CmpExpr)
	if cmp.Right.Value != valenc.EncodeString("str") {
		t.Fatalf("string literal encoding mismatch")
	}
	// NOT over comparison.
	not, ok := and.Operands[10].(*NotExpr)
	if !ok {
		t.Fatalf("operand 10 = %T, want NotExpr", and.Operands[10])
	}
	if _, ok := not.Operand.(*CmpExpr); !ok {
		t.Fatalf("NOT operand = %T", not.Operand)
	}
}

func TestParseNegativeAndDecimalLiterals(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = -5 AND b < 3.7")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and := stmt.Where.(*AndExpr)
	if got := and.Operands[0].(*CmpExpr).Right.Value; got != -5 {
		t.Fatalf("negative literal = %d", got)
	}
	if got := and.Operands[1].(*CmpExpr).Right.Value; got != 3 {
		t.Fatalf("decimal literal = %d, want truncation to 3", got)
	}
}

func TestParseInSubquery(t *testing.T) {
	stmt, err := Parse("SELECT * FROM orders WHERE o_id IN (SELECT ol_o_id FROM orderline WHERE ol_amount > 5)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	in, ok := stmt.Where.(*InSubqueryExpr)
	if !ok {
		t.Fatalf("Where = %T", stmt.Where)
	}
	if in.Not {
		t.Fatalf("unexpected NOT")
	}
	if in.Sub == nil || len(in.Sub.From) != 1 || in.Sub.From[0].Table != "orderline" {
		t.Fatalf("subquery = %+v", in.Sub)
	}
}

func TestParseNotInAndNotExists(t *testing.T) {
	stmt, err := Parse("SELECT * FROM a WHERE x NOT IN (SELECT y FROM b) AND NOT EXISTS (SELECT z FROM c WHERE c.z = a.x)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and := stmt.Where.(*AndExpr)
	in := and.Operands[0].(*InSubqueryExpr)
	if !in.Not {
		t.Fatalf("NOT IN lost its negation")
	}
	ex := and.Operands[1].(*ExistsExpr)
	if !ex.Not {
		t.Fatalf("NOT EXISTS lost its negation")
	}
}

func TestParseOrCondition(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = 1 OR a = 2 OR a IN (3, 4)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	or, ok := stmt.Where.(*OrExpr)
	if !ok || len(or.Operands) != 3 {
		t.Fatalf("Where = %#v", stmt.Where)
	}
}

func TestParseParenthesizedCondition(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE (a = 1 OR a = 2) AND b > 3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	and, ok := stmt.Where.(*AndExpr)
	if !ok || len(and.Operands) != 2 {
		t.Fatalf("Where = %#v", stmt.Where)
	}
	if _, ok := and.Operands[0].(*OrExpr); !ok {
		t.Fatalf("first conjunct = %T, want OrExpr", and.Operands[0])
	}
}

func TestParseLiteralOnLeft(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE 10 < a")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cmp := stmt.Where.(*CmpExpr)
	if cmp.Left.IsCol() || !cmp.Right.IsCol() {
		t.Fatalf("operand shapes wrong: %+v", cmp)
	}
	if cmp.Op != stats.OpLt {
		t.Fatalf("op = %v", cmp.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                      // empty
		"FROM t",                                // missing SELECT
		"SELECT FROM t",                         // empty select list
		"SELECT * FROM",                         // missing table
		"SELECT * FROM t WHERE",                 // missing condition
		"SELECT * FROM t WHERE a =",             // missing operand
		"SELECT * FROM t WHERE a = 1 x",         // can't be an alias: trailing after WHERE
		"SELECT * FROM t LIMIT x",               // bad limit
		"SELECT * FROM t WHERE a BETWEEN 1 2",   // missing AND
		"SELECT * FROM t WHERE 1 = 2",           // literal-literal comparison survives parse but analysis must fail; parser accepts
		"SELECT * FROM t WHERE a IN ()",         // empty IN
		"SELECT * FROM t JOIN u",                // missing ON
		"SELECT * FROM t WHERE EXISTS (SELECT)", // bad subquery
		"SELECT * FROM t WHERE (a = 1",          // unbalanced paren
	}
	for _, sql := range bad {
		if sql == "SELECT * FROM t WHERE 1 = 2" {
			continue // parseable; rejected at analysis
		}
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseTrailingInput(t *testing.T) {
	if _, err := Parse("SELECT * FROM t; SELECT * FROM u"); err == nil {
		t.Fatalf("Parse accepted two statements")
	}
}
