// Package sqlparse implements a lexer, recursive-descent parser and semantic
// analyzer for the OLAP subset of SQL used by the partitioning advisor:
// select–project–join queries with conjunctive predicates, GROUP BY / ORDER
// BY / HAVING / LIMIT clauses, and nested subqueries via IN / NOT IN /
// EXISTS / NOT EXISTS.
//
// The analyzer flattens a parsed query (including arbitrarily nested
// subqueries) into a Graph: the set of referenced base tables, the
// alias-level join edges, and the executable single-column filters. The
// Graph is all a partitioning advisor — and this repository's execution
// engine — needs; select lists, grouping and ordering are parsed but do not
// influence partitioning decisions.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // operators and punctuation: ( ) , . = <> < <= > >= + - * /
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// isKeyword reports whether the token is the given SQL keyword
// (case-insensitive).
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// isSymbol reports whether the token is the given symbol.
func (t token) isSymbol(s string) bool {
	return t.kind == tokSymbol && t.text == s
}

// lex splits the input into tokens. It returns an error for unterminated
// strings or unexpected characters.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		case unicode.IsDigit(rune(c)):
			start := i
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			for i < n && input[i] != '\'' {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
			}
			toks = append(toks, token{tokString, input[start+1 : i], start})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{tokSymbol, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokSymbol, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
			}
		case strings.ContainsRune("(),.=+-*/;", rune(c)):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
