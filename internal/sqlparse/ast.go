package sqlparse

import "partadvisor/internal/stats"

// SelectStmt is the AST of one (possibly nested) SELECT query.
type SelectStmt struct {
	// SelectList holds the raw text of each projection item; projections do
	// not influence partitioning and are preserved only for round-tripping.
	SelectList []string
	// From lists the referenced tables with their aliases.
	From []TableRef
	// Where is the conjunctive/disjunctive condition tree (nil if absent).
	Where Expr
	// GroupBy and OrderBy hold raw column texts; Limit is -1 if absent.
	GroupBy []string
	OrderBy []string
	Limit   int64
}

// TableRef references a base table under an alias ("customer c"; the alias
// defaults to the table name).
type TableRef struct {
	Table string
	Alias string
}

// Expr is a node of the WHERE condition tree.
type Expr interface{ isExpr() }

// AndExpr is the conjunction of its operands.
type AndExpr struct{ Operands []Expr }

// OrExpr is the disjunction of its operands.
type OrExpr struct{ Operands []Expr }

// NotExpr negates its operand. Only NOT IN / NOT EXISTS survive analysis.
type NotExpr struct{ Operand Expr }

// ColRef references alias.column (Qualifier may be empty and is resolved
// against the FROM list during analysis).
type ColRef struct {
	Qualifier string
	Column    string
}

// CmpExpr compares two operands, each either a ColRef or a literal int64.
// Column-to-column equality is a join predicate; column-to-literal
// comparisons are filters.
type CmpExpr struct {
	Op          stats.CompareOp
	Left, Right Operand
}

// BetweenExpr is "col BETWEEN lo AND hi".
type BetweenExpr struct {
	Col    ColRef
	Lo, Hi int64
}

// InListExpr is "col IN (v1, v2, ...)".
type InListExpr struct {
	Col  ColRef
	Vals []int64
}

// InSubqueryExpr is "col [NOT] IN (SELECT ...)".
type InSubqueryExpr struct {
	Col ColRef
	Sub *SelectStmt
	Not bool
}

// ExistsExpr is "[NOT] EXISTS (SELECT ...)".
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

// Operand is either a column reference or an integer literal.
type Operand struct {
	Col   *ColRef
	Value int64
}

// IsCol reports whether the operand is a column reference.
func (o Operand) IsCol() bool { return o.Col != nil }

func (*AndExpr) isExpr()        {}
func (*OrExpr) isExpr()         {}
func (*NotExpr) isExpr()        {}
func (*CmpExpr) isExpr()        {}
func (*BetweenExpr) isExpr()    {}
func (*InListExpr) isExpr()     {}
func (*InSubqueryExpr) isExpr() {}
func (*ExistsExpr) isExpr()     {}
