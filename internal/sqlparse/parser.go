package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"partadvisor/internal/stats"
	"partadvisor/internal/valenc"
)

// Parse parses one SELECT statement (optionally ';'-terminated).
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().isSymbol(";") {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token { // token after cur
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if !p.cur().isSymbol(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	p.next()
	return nil
}

// reservedAfterRef lists keywords that terminate a table reference or
// clause, so that bare identifiers are not swallowed as aliases.
var reservedAfterRef = []string{
	"where", "group", "order", "having", "limit", "join", "inner", "left",
	"right", "full", "on", "and", "or", "as", "from", "select", "union",
}

func isReserved(t token) bool {
	for _, kw := range reservedAfterRef {
		if t.isKeyword(kw) {
			return true
		}
	}
	return false
}

// parseSelect parses SELECT ... FROM ... [WHERE ...] [GROUP BY ...]
// [HAVING ...] [ORDER BY ...] [LIMIT n].
func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	items, err := p.scanSelectList()
	if err != nil {
		return nil, err
	}
	stmt.SelectList = items
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(stmt); err != nil {
		return nil, err
	}
	if p.cur().isKeyword("where") {
		p.next()
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		// Merge with any ON-clause joins already collected in Where.
		if stmt.Where != nil {
			stmt.Where = &AndExpr{Operands: []Expr{stmt.Where, w}}
		} else {
			stmt.Where = w
		}
	}
	if p.cur().isKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		cols, err := p.scanExprList()
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = cols
	}
	if p.cur().isKeyword("having") {
		// HAVING applies to aggregates and never affects partitioning:
		// skip its condition with balanced parentheses.
		p.next()
		p.skipUntilClause()
	}
	if p.cur().isKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		cols, err := p.scanExprList()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = cols
	}
	if p.cur().isKeyword("limit") {
		p.next()
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		v, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT value: %v", err)
		}
		stmt.Limit = v
	}
	return stmt, nil
}

// scanSelectList collects the raw text of projection items up to the
// top-level FROM keyword, respecting parenthesis nesting (so aggregate calls
// and arithmetic pass through).
func (p *parser) scanSelectList() ([]string, error) {
	var items []string
	var b strings.Builder
	depth := 0
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return nil, p.errf("unexpected end of input in select list")
		}
		if depth == 0 && t.isKeyword("from") {
			break
		}
		if depth == 0 && t.isSymbol(",") {
			items = append(items, strings.TrimSpace(b.String()))
			b.Reset()
			p.next()
			continue
		}
		if t.isSymbol("(") {
			depth++
		}
		if t.isSymbol(")") {
			depth--
			if depth < 0 {
				return nil, p.errf("unbalanced ')' in select list")
			}
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if t.kind == tokString {
			b.WriteString("'" + t.text + "'")
		} else {
			b.WriteString(t.text)
		}
		p.next()
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		items = append(items, s)
	}
	if len(items) == 0 {
		return nil, p.errf("empty select list")
	}
	return items, nil
}

// scanExprList collects comma-separated raw expression texts until a clause
// keyword, ')' at depth 0, ';' or EOF.
func (p *parser) scanExprList() ([]string, error) {
	var items []string
	var b strings.Builder
	depth := 0
	flush := func() {
		if s := strings.TrimSpace(b.String()); s != "" {
			items = append(items, s)
		}
		b.Reset()
	}
	for {
		t := p.cur()
		if t.kind == tokEOF || t.isSymbol(";") {
			break
		}
		if depth == 0 && (t.isKeyword("group") || t.isKeyword("order") || t.isKeyword("having") || t.isKeyword("limit") || t.isSymbol(")")) {
			break
		}
		if depth == 0 && t.isSymbol(",") {
			flush()
			p.next()
			continue
		}
		if t.isSymbol("(") {
			depth++
		}
		if t.isSymbol(")") {
			depth--
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.text)
		p.next()
	}
	flush()
	return items, nil
}

// skipUntilClause skips tokens (with balanced parentheses) until the next
// top-level clause keyword, ')' at depth 0, ';' or EOF.
func (p *parser) skipUntilClause() {
	depth := 0
	for {
		t := p.cur()
		if t.kind == tokEOF || t.isSymbol(";") {
			return
		}
		if depth == 0 && (t.isKeyword("group") || t.isKeyword("order") || t.isKeyword("limit") || t.isSymbol(")")) {
			return
		}
		if t.isSymbol("(") {
			depth++
		}
		if t.isSymbol(")") {
			depth--
		}
		p.next()
	}
}

// parseFrom parses the FROM clause: comma-separated table references with
// optional [INNER|LEFT|RIGHT|FULL] JOIN ... ON ... chains. ON conditions are
// accumulated into stmt.Where.
func (p *parser) parseFrom(stmt *SelectStmt) error {
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return err
		}
		stmt.From = append(stmt.From, ref)
		// JOIN chains.
		for {
			if p.cur().isKeyword("inner") || p.cur().isKeyword("left") || p.cur().isKeyword("right") || p.cur().isKeyword("full") {
				p.next()
				if p.cur().isKeyword("outer") {
					p.next()
				}
			}
			if !p.cur().isKeyword("join") {
				break
			}
			p.next()
			ref, err := p.parseTableRef()
			if err != nil {
				return err
			}
			stmt.From = append(stmt.From, ref)
			if err := p.expectKeyword("on"); err != nil {
				return err
			}
			cond, err := p.parseOr()
			if err != nil {
				return err
			}
			if stmt.Where == nil {
				stmt.Where = cond
			} else {
				stmt.Where = &AndExpr{Operands: []Expr{stmt.Where, cond}}
			}
		}
		if p.cur().isSymbol(",") {
			p.next()
			continue
		}
		return nil
	}
}

// parseTableRef parses "table [AS] [alias]".
func (p *parser) parseTableRef() (TableRef, error) {
	if p.cur().kind != tokIdent || isReserved(p.cur()) {
		return TableRef{}, p.errf("expected table name, found %q", p.cur().text)
	}
	name := p.next().text
	ref := TableRef{Table: name, Alias: name}
	if p.cur().isKeyword("as") {
		p.next()
		if p.cur().kind != tokIdent {
			return TableRef{}, p.errf("expected alias after AS")
		}
		ref.Alias = p.next().text
	} else if p.cur().kind == tokIdent && !isReserved(p.cur()) {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// parseOr parses a disjunction of conjunctions.
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	if !p.cur().isKeyword("or") {
		return left, nil
	}
	or := &OrExpr{Operands: []Expr{left}}
	for p.cur().isKeyword("or") {
		p.next()
		e, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		or.Operands = append(or.Operands, e)
	}
	return or, nil
}

// parseAnd parses a conjunction of primaries.
func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if !p.cur().isKeyword("and") {
		return left, nil
	}
	and := &AndExpr{Operands: []Expr{left}}
	for p.cur().isKeyword("and") {
		p.next()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		and.Operands = append(and.Operands, e)
	}
	return and, nil
}

// parsePrimary parses a single predicate, a parenthesized condition, NOT, or
// EXISTS.
func (p *parser) parsePrimary() (Expr, error) {
	if p.cur().isKeyword("not") {
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		// Push NOT into IN-subquery / EXISTS where it has meaning.
		switch e := inner.(type) {
		case *InSubqueryExpr:
			e.Not = !e.Not
			return e, nil
		case *ExistsExpr:
			e.Not = !e.Not
			return e, nil
		}
		return &NotExpr{Operand: inner}, nil
	}
	if p.cur().isKeyword("exists") {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub}, nil
	}
	if p.cur().isSymbol("(") {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	// operand [cmp operand | BETWEEN lo AND hi | [NOT] IN (...) | IS [NOT] NULL]
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	switch {
	case p.cur().isKeyword("between"):
		p.next()
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if !left.IsCol() {
			return nil, p.errf("BETWEEN requires a column on the left")
		}
		return &BetweenExpr{Col: *left.Col, Lo: lo, Hi: hi}, nil
	case p.cur().isKeyword("not") && p.peek().isKeyword("in"):
		p.next()
		p.next()
		e, err := p.parseInTail(left)
		if err != nil {
			return nil, err
		}
		if sub, ok := e.(*InSubqueryExpr); ok {
			sub.Not = true
			return sub, nil
		}
		return &NotExpr{Operand: e}, nil
	case p.cur().isKeyword("in"):
		p.next()
		return p.parseInTail(left)
	case p.cur().isKeyword("is"):
		// IS [NOT] NULL: generated data has no NULLs; treat as no-op filter.
		p.next()
		if p.cur().isKeyword("not") {
			p.next()
		}
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		if !left.IsCol() {
			return nil, p.errf("IS NULL requires a column")
		}
		return &CmpExpr{Op: stats.OpGe, Left: left, Right: Operand{Value: -(1 << 62)}}, nil
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Op: op, Left: left, Right: right}, nil
}

// parseInTail parses the remainder of "col IN ..." after IN was consumed.
func (p *parser) parseInTail(left Operand) (Expr, error) {
	if !left.IsCol() {
		return nil, p.errf("IN requires a column on the left")
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.cur().isKeyword("select") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InSubqueryExpr{Col: *left.Col, Sub: sub}, nil
	}
	var vals []int64
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.cur().isSymbol(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &InListExpr{Col: *left.Col, Vals: vals}, nil
}

func (p *parser) parseCmpOp() (stats.CompareOp, error) {
	t := p.cur()
	if t.kind != tokSymbol {
		return 0, p.errf("expected comparison operator, found %q", t.text)
	}
	var op stats.CompareOp
	switch t.text {
	case "=":
		op = stats.OpEq
	case "<>":
		op = stats.OpNe
	case "<":
		op = stats.OpLt
	case "<=":
		op = stats.OpLe
	case ">":
		op = stats.OpGt
	case ">=":
		op = stats.OpGe
	default:
		return 0, p.errf("unsupported operator %q", t.text)
	}
	p.next()
	return op, nil
}

// parseOperand parses a column reference or a literal.
func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		if isReserved(t) {
			return Operand{}, p.errf("expected operand, found keyword %q", t.text)
		}
		first := p.next().text
		if p.cur().isSymbol(".") {
			p.next()
			if p.cur().kind != tokIdent {
				return Operand{}, p.errf("expected column after %q.", first)
			}
			col := p.next().text
			return Operand{Col: &ColRef{Qualifier: first, Column: col}}, nil
		}
		return Operand{Col: &ColRef{Column: first}}, nil
	case tokNumber, tokString:
		v, err := p.parseLiteral()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Value: v}, nil
	case tokSymbol:
		if t.text == "-" {
			p.next()
			v, err := p.parseLiteral()
			if err != nil {
				return Operand{}, err
			}
			return Operand{Value: -v}, nil
		}
	}
	return Operand{}, p.errf("expected operand, found %q", t.text)
}

// parseLiteral parses an integer or string literal into its int64 encoding.
// Decimal literals are truncated toward zero (generated data is integral).
func (p *parser) parseLiteral() (int64, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return 0, p.errf("bad numeric literal %q", t.text)
			}
			return int64(f), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return 0, p.errf("bad integer literal %q", t.text)
		}
		return v, nil
	case tokString:
		p.next()
		return valenc.EncodeString(t.text), nil
	case tokSymbol:
		if t.text == "-" {
			p.next()
			v, err := p.parseLiteral()
			if err != nil {
				return 0, err
			}
			return -v, nil
		}
	}
	return 0, p.errf("expected literal, found %q", t.text)
}
