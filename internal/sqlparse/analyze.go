package sqlparse

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"partadvisor/internal/schema"
	"partadvisor/internal/stats"
)

// Graph is the flattened, analyzer-verified form of a query: everything a
// partitioning advisor or the execution engine needs. Nested subqueries are
// flattened into the graph with their linking predicates marked as semijoins
// (or antijoins for NOT IN / NOT EXISTS).
type Graph struct {
	// Refs lists the table references (alias -> base table). Aliases are
	// unique across the flattened query; subquery aliases that clash with
	// outer aliases are suffixed with "_s<depth>".
	Refs []TableRef
	// Joins lists the alias-level equi-join predicates.
	Joins []Join
	// Filters lists the executable single-column predicates.
	Filters []Filter
	// Outputs lists the (alias, column) pairs referenced by select lists
	// and GROUP BY clauses. The execution engine materializes them so that
	// shuffled intermediates carry realistic payload widths.
	Outputs []ColumnRef
}

// ColumnRef is a resolved (alias, column) reference.
type ColumnRef struct {
	Alias  string
	Column string
}

// Join is an equi-join predicate between two aliased tables.
type Join struct {
	LeftAlias  string
	LeftCol    string
	RightAlias string
	RightCol   string
	// Semi marks predicates that link a flattened subquery to its outer
	// query (IN / EXISTS); Anti additionally marks negated linkage.
	Semi bool
	Anti bool
}

// String renders the join as "a.x = b.y".
func (j Join) String() string {
	s := fmt.Sprintf("%s.%s = %s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol)
	if j.Anti {
		return s + " [anti]"
	}
	if j.Semi {
		return s + " [semi]"
	}
	return s
}

// Filter is an executable predicate on a single column of one alias.
type Filter struct {
	Alias  string
	Column string
	Op     stats.CompareOp
	Args   []int64
	// Neg complements the predicate (e.g. NOT BETWEEN).
	Neg bool
}

// Matches reports whether a value passes the filter.
func (f Filter) Matches(v int64) bool {
	return stats.Matches(v, f.Op, f.Args) != f.Neg
}

// Table returns the base table of the given alias ("" if unknown).
func (g *Graph) Table(alias string) string {
	for _, r := range g.Refs {
		if r.Alias == alias {
			return r.Table
		}
	}
	return ""
}

// BaseTables returns the sorted, deduplicated base table names.
func (g *Graph) BaseTables() []string {
	set := make(map[string]bool, len(g.Refs))
	for _, r := range g.Refs {
		set[r.Table] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// JoinEdges returns the canonicalized base-table-level join edges of the
// query, deduplicated. These seed the co-partitioning edge set of the
// partitioning design space.
func (g *Graph) JoinEdges() []schema.JoinEdge {
	set := make(map[schema.JoinEdge]bool, len(g.Joins))
	for _, j := range g.Joins {
		lt, rt := g.Table(j.LeftAlias), g.Table(j.RightAlias)
		if lt == "" || rt == "" || lt == rt {
			continue // self-joins cannot guide co-partitioning of two tables
		}
		set[schema.NewJoinEdge(lt, j.LeftCol, rt, j.RightCol)] = true
	}
	edges := make([]schema.JoinEdge, 0, len(set))
	for e := range set {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, k int) bool {
		a, b := edges[i], edges[k]
		if a.Table1 != b.Table1 {
			return a.Table1 < b.Table1
		}
		if a.Attr1 != b.Attr1 {
			return a.Attr1 < b.Attr1
		}
		if a.Table2 != b.Table2 {
			return a.Table2 < b.Table2
		}
		return a.Attr2 < b.Attr2
	})
	return edges
}

// FiltersFor returns the filters applying to one alias.
func (g *Graph) FiltersFor(alias string) []Filter {
	var out []Filter
	for _, f := range g.Filters {
		if f.Alias == alias {
			out = append(out, f)
		}
	}
	return out
}

// Analyze resolves a parsed statement against a schema and flattens it into
// a Graph. It verifies that all tables and columns exist, resolves
// unqualified columns, classifies predicates into joins and filters, and
// recursively flattens IN/EXISTS subqueries (correlated predicates become
// semijoin edges).
func Analyze(stmt *SelectStmt, sch *schema.Schema) (*Graph, error) {
	g := &Graph{}
	a := &analyzer{sch: sch, g: g, usedAliases: make(map[string]bool)}
	if err := a.flatten(stmt, nil, 0); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseAndAnalyze is the one-call front door: parse SQL, then analyze it.
func ParseAndAnalyze(sql string, sch *schema.Schema) (*Graph, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Analyze(stmt, sch)
}

type analyzer struct {
	sch         *schema.Schema
	g           *Graph
	usedAliases map[string]bool
	// lastScope records the scope of the most recently flattened statement,
	// so that subquery linkage can resolve the subquery's projected column.
	lastScope *scope
}

// scope maps the aliases visible at one nesting level, with a link to the
// enclosing scope for correlated references. Each entry remembers the alias
// as written in the SQL (orig) and the globally unique alias used in the
// flattened graph (alias) — they differ when a subquery reuses an alias of
// an enclosing query.
type scopeRef struct {
	orig  string
	alias string
	table string
}

type scope struct {
	refs  []scopeRef
	outer *scope
}

// resolve finds the (globally unique) alias owning the column reference,
// searching the current scope first and then outer scopes (correlation).
func (sc *scope) resolve(c ColRef, sch *schema.Schema) (alias string, err error) {
	for s := sc; s != nil; s = s.outer {
		if c.Qualifier != "" {
			for _, r := range s.refs {
				if r.orig == c.Qualifier {
					if !sch.MustTable(r.table).HasAttribute(c.Column) {
						return "", fmt.Errorf("sqlparse: table %q (alias %q) has no column %q", r.table, r.orig, c.Column)
					}
					return r.alias, nil
				}
			}
			continue
		}
		var found []string
		for _, r := range s.refs {
			if sch.MustTable(r.table).HasAttribute(c.Column) {
				found = append(found, r.alias)
			}
		}
		if len(found) > 1 {
			return "", fmt.Errorf("sqlparse: ambiguous column %q (candidates %v)", c.Column, found)
		}
		if len(found) == 1 {
			return found[0], nil
		}
	}
	if c.Qualifier != "" {
		return "", fmt.Errorf("sqlparse: unknown alias %q", c.Qualifier)
	}
	return "", fmt.Errorf("sqlparse: unknown column %q", c.Column)
}

// flatten adds stmt's tables, joins and filters to the graph. outer is the
// enclosing scope (nil at the top level); depth disambiguates subquery
// aliases. It returns the statement's own scope via the analyzer state so
// that IN-linkage can resolve the projected column.
func (a *analyzer) flatten(stmt *SelectStmt, outer *scope, depth int) error {
	if len(stmt.From) == 0 {
		return fmt.Errorf("sqlparse: query has no FROM clause")
	}
	sc := &scope{outer: outer}
	for _, ref := range stmt.From {
		if a.sch.Table(ref.Table) == nil {
			return fmt.Errorf("sqlparse: unknown table %q", ref.Table)
		}
		// Duplicate aliases within one FROM clause are an error; clashes
		// with enclosing queries are resolved by uniquification.
		for _, prev := range sc.refs {
			if prev.orig == ref.Alias {
				return fmt.Errorf("sqlparse: duplicate alias %q in FROM clause", ref.Alias)
			}
		}
		alias := ref.Alias
		for a.usedAliases[alias] {
			alias = fmt.Sprintf("%s_s%d", ref.Alias, depth)
			if a.usedAliases[alias] {
				alias = fmt.Sprintf("%s_s%d_%d", ref.Alias, depth, len(a.usedAliases))
			}
		}
		a.usedAliases[alias] = true
		sc.refs = append(sc.refs, scopeRef{orig: ref.Alias, alias: alias, table: ref.Table})
		a.g.Refs = append(a.g.Refs, TableRef{Table: ref.Table, Alias: alias})
	}
	for _, item := range stmt.SelectList {
		a.collectOutputCols(item, sc)
	}
	for _, item := range stmt.GroupBy {
		a.collectOutputCols(item, sc)
	}
	if stmt.Where != nil {
		if err := a.walk(stmt.Where, sc, depth, false, false); err != nil {
			return err
		}
	}
	a.lastScope = sc
	return nil
}

// collectOutputCols scans a raw projection/grouping expression for column
// references and records the resolvable ones. Unresolvable identifiers
// (aggregate names, '*', literals) are skipped silently — output columns
// only refine byte accounting and never affect correctness.
func (a *analyzer) collectOutputCols(item string, sc *scope) {
	toks, err := lex(item)
	if err != nil {
		return
	}
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.kind != tokIdent || isReserved(t) {
			continue
		}
		// Function call: skip the function name itself.
		if i+1 < len(toks) && toks[i+1].isSymbol("(") {
			continue
		}
		var ref ColRef
		if i+2 < len(toks) && toks[i+1].isSymbol(".") && toks[i+2].kind == tokIdent {
			ref = ColRef{Qualifier: t.text, Column: toks[i+2].text}
			i += 2
		} else {
			ref = ColRef{Column: t.text}
		}
		alias, err := sc.resolve(ref, a.sch)
		if err != nil {
			continue
		}
		cr := ColumnRef{Alias: alias, Column: ref.Column}
		dup := false
		for _, have := range a.g.Outputs {
			if have == cr {
				dup = true
				break
			}
		}
		if !dup {
			a.g.Outputs = append(a.g.Outputs, cr)
		}
	}
}

func (a *analyzer) walk(e Expr, sc *scope, depth int, semi, anti bool) error {
	switch ex := e.(type) {
	case *AndExpr:
		for _, op := range ex.Operands {
			if err := a.walk(op, sc, depth, semi, anti); err != nil {
				return err
			}
		}
		return nil
	case *OrExpr:
		return a.mergeOr(ex, sc)
	case *NotExpr:
		return a.walkNot(ex.Operand, sc, depth)
	case *CmpExpr:
		return a.addCmp(ex, sc, semi, anti, false)
	case *BetweenExpr:
		alias, err := sc.resolve(ex.Col, a.sch)
		if err != nil {
			return err
		}
		a.g.Filters = append(a.g.Filters, Filter{Alias: alias, Column: ex.Col.Column, Op: stats.OpBetween, Args: []int64{ex.Lo, ex.Hi}})
		return nil
	case *InListExpr:
		alias, err := sc.resolve(ex.Col, a.sch)
		if err != nil {
			return err
		}
		a.g.Filters = append(a.g.Filters, Filter{Alias: alias, Column: ex.Col.Column, Op: stats.OpIn, Args: append([]int64(nil), ex.Vals...)})
		return nil
	case *InSubqueryExpr:
		return a.flattenIn(ex, sc, depth)
	case *ExistsExpr:
		return a.flattenExists(ex, sc, depth)
	}
	return fmt.Errorf("sqlparse: unsupported expression %T", e)
}

// walkNot handles NOT over simple predicates by complementing them.
func (a *analyzer) walkNot(e Expr, sc *scope, depth int) error {
	switch ex := e.(type) {
	case *CmpExpr:
		inv := map[stats.CompareOp]stats.CompareOp{
			stats.OpEq: stats.OpNe, stats.OpNe: stats.OpEq,
			stats.OpLt: stats.OpGe, stats.OpGe: stats.OpLt,
			stats.OpLe: stats.OpGt, stats.OpGt: stats.OpLe,
		}
		return a.addCmp(&CmpExpr{Op: inv[ex.Op], Left: ex.Left, Right: ex.Right}, sc, false, false, false)
	case *BetweenExpr:
		alias, err := sc.resolve(ex.Col, a.sch)
		if err != nil {
			return err
		}
		a.g.Filters = append(a.g.Filters, Filter{Alias: alias, Column: ex.Col.Column, Op: stats.OpBetween, Args: []int64{ex.Lo, ex.Hi}, Neg: true})
		return nil
	case *InListExpr:
		alias, err := sc.resolve(ex.Col, a.sch)
		if err != nil {
			return err
		}
		a.g.Filters = append(a.g.Filters, Filter{Alias: alias, Column: ex.Col.Column, Op: stats.OpIn, Args: append([]int64(nil), ex.Vals...), Neg: true})
		return nil
	}
	return fmt.Errorf("sqlparse: unsupported NOT over %T", e)
}

// addCmp classifies a comparison as a join predicate (col = col) or a filter
// (col op literal).
func (a *analyzer) addCmp(ex *CmpExpr, sc *scope, semi, anti, neg bool) error {
	l, r := ex.Left, ex.Right
	switch {
	case l.IsCol() && r.IsCol():
		la, err := sc.resolve(*l.Col, a.sch)
		if err != nil {
			return err
		}
		ra, err := sc.resolve(*r.Col, a.sch)
		if err != nil {
			return err
		}
		if la == ra {
			// Same-alias column comparisons (e.g. TPC-H Q21's
			// l_receiptdate > l_commitdate) are row-local filters; they
			// never influence partitioning and are dropped from the graph.
			return nil
		}
		if ex.Op != stats.OpEq {
			return fmt.Errorf("sqlparse: only equality joins are supported, found %v", ex.Op)
		}
		a.g.Joins = append(a.g.Joins, Join{LeftAlias: la, LeftCol: l.Col.Column, RightAlias: ra, RightCol: r.Col.Column, Semi: semi || anti, Anti: anti})
		return nil
	case l.IsCol():
		alias, err := sc.resolve(*l.Col, a.sch)
		if err != nil {
			return err
		}
		a.g.Filters = append(a.g.Filters, Filter{Alias: alias, Column: l.Col.Column, Op: ex.Op, Args: []int64{r.Value}, Neg: neg})
		return nil
	case r.IsCol():
		// literal op col: flip the operator.
		flip := map[stats.CompareOp]stats.CompareOp{
			stats.OpEq: stats.OpEq, stats.OpNe: stats.OpNe,
			stats.OpLt: stats.OpGt, stats.OpGt: stats.OpLt,
			stats.OpLe: stats.OpGe, stats.OpGe: stats.OpLe,
		}
		alias, err := sc.resolve(*r.Col, a.sch)
		if err != nil {
			return err
		}
		a.g.Filters = append(a.g.Filters, Filter{Alias: alias, Column: r.Col.Column, Op: flip[ex.Op], Args: []int64{l.Value}, Neg: neg})
		return nil
	}
	return fmt.Errorf("sqlparse: comparison between two literals")
}

// mergeOr supports the common OLAP disjunction pattern: OR of equality /
// IN-list predicates over the same column, merged into a single IN filter.
// Any other disjunction is rejected (the benchmark workloads do not need
// it, and silently mis-modeling a disjunction would corrupt selectivities).
func (a *analyzer) mergeOr(or *OrExpr, sc *scope) error {
	var col *ColRef
	var vals []int64
	for _, op := range or.Operands {
		switch ex := op.(type) {
		case *CmpExpr:
			if ex.Op != stats.OpEq || !ex.Left.IsCol() || ex.Right.IsCol() {
				return fmt.Errorf("sqlparse: unsupported OR operand (want column = literal)")
			}
			if col == nil {
				col = ex.Left.Col
			} else if col.Qualifier != ex.Left.Col.Qualifier || col.Column != ex.Left.Col.Column {
				return fmt.Errorf("sqlparse: OR across different columns is unsupported")
			}
			vals = append(vals, ex.Right.Value)
		case *InListExpr:
			if col == nil {
				col = &ex.Col
			} else if col.Qualifier != ex.Col.Qualifier || col.Column != ex.Col.Column {
				return fmt.Errorf("sqlparse: OR across different columns is unsupported")
			}
			vals = append(vals, ex.Vals...)
		default:
			return fmt.Errorf("sqlparse: unsupported OR operand %T", op)
		}
	}
	alias, err := sc.resolve(*col, a.sch)
	if err != nil {
		return err
	}
	a.g.Filters = append(a.g.Filters, Filter{Alias: alias, Column: col.Column, Op: stats.OpIn, Args: vals})
	return nil
}

// flattenIn flattens "col [NOT] IN (SELECT x FROM ...)" by inlining the
// subquery and adding the semijoin edge col = x.
func (a *analyzer) flattenIn(ex *InSubqueryExpr, sc *scope, depth int) error {
	outerAlias, err := sc.resolve(ex.Col, a.sch)
	if err != nil {
		return err
	}
	if len(ex.Sub.SelectList) != 1 {
		return fmt.Errorf("sqlparse: IN-subquery must project exactly one column")
	}
	projCol, err := parseProjectedColumn(ex.Sub.SelectList[0])
	if err != nil {
		return err
	}
	if err := a.flatten(ex.Sub, sc, depth+1); err != nil {
		return err
	}
	subScope := a.lastScope
	subAlias, err := subScope.resolve(projCol, a.sch)
	if err != nil {
		return err
	}
	a.g.Joins = append(a.g.Joins, Join{
		LeftAlias: outerAlias, LeftCol: ex.Col.Column,
		RightAlias: subAlias, RightCol: projCol.Column,
		Semi: true, Anti: ex.Not,
	})
	return nil
}

// flattenExists flattens "[NOT] EXISTS (SELECT ...)": the subquery's tables
// are inlined; its correlated predicates (already resolvable against the
// outer scope) become the semijoin linkage.
func (a *analyzer) flattenExists(ex *ExistsExpr, sc *scope, depth int) error {
	before := len(a.g.Joins)
	if err := a.flatten(ex.Sub, sc, depth+1); err != nil {
		return err
	}
	subScope := a.lastScope
	subAliases := make(map[string]bool, len(subScope.refs))
	for _, r := range subScope.refs {
		subAliases[r.alias] = true
	}
	linked := false
	for i := before; i < len(a.g.Joins); i++ {
		j := &a.g.Joins[i]
		crossing := subAliases[j.LeftAlias] != subAliases[j.RightAlias]
		if crossing {
			// Normalize semijoin linkage so the outer (surviving) side is
			// always on the left — the executor relies on this orientation.
			if subAliases[j.LeftAlias] {
				j.LeftAlias, j.RightAlias = j.RightAlias, j.LeftAlias
				j.LeftCol, j.RightCol = j.RightCol, j.LeftCol
			}
			j.Semi = true
			j.Anti = ex.Not
			linked = true
		}
	}
	if !linked {
		return fmt.Errorf("sqlparse: EXISTS subquery is uncorrelated (no predicate links it to the outer query)")
	}
	return nil
}

// parseProjectedColumn parses a projection item text ("x" or "t.x") into a
// column reference.
func parseProjectedColumn(item string) (ColRef, error) {
	parts := strings.Split(strings.TrimSpace(item), ".")
	switch len(parts) {
	case 1:
		if !isSimpleIdent(parts[0]) {
			return ColRef{}, fmt.Errorf("sqlparse: IN-subquery must project a simple column, got %q", item)
		}
		return ColRef{Column: strings.TrimSpace(parts[0])}, nil
	case 2:
		q, c := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if !isSimpleIdent(q) || !isSimpleIdent(c) {
			return ColRef{}, fmt.Errorf("sqlparse: IN-subquery must project a simple column, got %q", item)
		}
		return ColRef{Qualifier: q, Column: c}, nil
	}
	return ColRef{}, fmt.Errorf("sqlparse: IN-subquery must project a simple column, got %q", item)
}

func isSimpleIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || unicode.IsLetter(r) || (i > 0 && unicode.IsDigit(r))
		if !ok {
			return false
		}
	}
	return true
}
