package sqlparse

import (
	"strings"
	"testing"

	"partadvisor/internal/stats"
)

// Additional edge-path coverage for the parser and analyzer.

func TestParseAliasForms(t *testing.T) {
	// Bare alias, AS alias, and no alias.
	stmt, err := Parse("SELECT * FROM orders o, customer AS c, item")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From[0].Alias != "o" || stmt.From[1].Alias != "c" || stmt.From[2].Alias != "item" {
		t.Fatalf("aliases = %+v", stmt.From)
	}
	// AS must be followed by an identifier.
	if _, err := Parse("SELECT * FROM orders AS 5"); err == nil {
		t.Fatalf("AS 5 accepted")
	}
}

func TestParseOperandErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM t WHERE a. = 1",            // missing column after dot
		"SELECT * FROM t WHERE a = WHERE",         // keyword as operand
		"SELECT * FROM t WHERE a = ,",             // punctuation operand
		"SELECT * FROM t WHERE a BETWEEN x AND 3", // non-literal BETWEEN bound
		"SELECT * FROM t WHERE 3 BETWEEN 1 AND 5", // BETWEEN needs a column
		"SELECT * FROM t WHERE 5 IN (1, 2)",       // IN needs a column
		"SELECT * FROM t WHERE a IN (1, )",        // trailing comma
		"SELECT * FROM t WHERE a ~ 3",             // unknown operator symbol -> lex error
		"SELECT * FROM t WHERE a IS 5",            // IS must be [NOT] NULL
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded", sql)
		}
	}
}

func TestParseNegativeLiteralViaMinusOperand(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE -5 < a")
	if err != nil {
		t.Fatal(err)
	}
	cmp := stmt.Where.(*CmpExpr)
	if cmp.Left.Value != -5 {
		t.Fatalf("left literal = %d", cmp.Left.Value)
	}
}

func TestParseDoubleNotCancels(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE NOT NOT EXISTS (SELECT x FROM u WHERE u.x = t.y)")
	if err != nil {
		t.Fatal(err)
	}
	not, ok := stmt.Where.(*NotExpr)
	if ok {
		// NOT(NOT EXISTS ...) folds into EXISTS with Not toggled twice.
		if ex, ok := not.Operand.(*ExistsExpr); ok && ex.Not {
			t.Fatalf("double NOT left Not=true")
		}
		return
	}
	ex, ok := stmt.Where.(*ExistsExpr)
	if !ok || ex.Not {
		t.Fatalf("Where = %#v", stmt.Where)
	}
}

func TestParseHavingSkippedWithParens(t *testing.T) {
	stmt, err := Parse(`SELECT a, count(b) FROM orders GROUP BY a
		HAVING count(b) > (1 + 2) ORDER BY a LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Limit != 5 || len(stmt.OrderBy) != 1 {
		t.Fatalf("clauses after HAVING lost: %+v", stmt)
	}
}

func TestAnalyzeInSubqueryProjectionErrors(t *testing.T) {
	sch := analyzeSchema()
	bad := []string{
		// Two projected columns.
		"SELECT * FROM customer c WHERE c.c_id IN (SELECT o_c_id, o_id FROM orders)",
		// Aggregate projection is not a simple column.
		"SELECT * FROM customer c WHERE c.c_id IN (SELECT max(o_c_id) FROM orders)",
		// Three-part projection.
		"SELECT * FROM customer c WHERE c.c_id IN (SELECT a.b.c FROM orders)",
	}
	for _, sql := range bad {
		if _, err := ParseAndAnalyze(sql, sch); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestAnalyzeNotOverUnsupported(t *testing.T) {
	sch := analyzeSchema()
	_, err := ParseAndAnalyze("SELECT * FROM orders o1, orders o2 WHERE NOT (o1.o_id = 1 AND o2.o_id = 2)", sch)
	if err == nil || !strings.Contains(err.Error(), "NOT") {
		t.Fatalf("NOT over conjunction accepted: %v", err)
	}
}

func TestAnalyzeLiteralFlipsAllOperators(t *testing.T) {
	sch := analyzeSchema()
	cases := map[string]stats.CompareOp{
		"5 = o_id":  stats.OpEq,
		"5 <> o_id": stats.OpNe,
		"5 < o_id":  stats.OpGt,
		"5 <= o_id": stats.OpGe,
		"5 > o_id":  stats.OpLt,
		"5 >= o_id": stats.OpLe,
	}
	for pred, want := range cases {
		g, err := ParseAndAnalyze("SELECT * FROM orders WHERE "+pred, sch)
		if err != nil {
			t.Fatalf("%s: %v", pred, err)
		}
		if len(g.Filters) != 1 || g.Filters[0].Op != want {
			t.Errorf("%s: filter = %+v, want op %v", pred, g.Filters, want)
		}
	}
}

func TestAnalyzeOutputsCollected(t *testing.T) {
	sch := analyzeSchema()
	g, err := ParseAndAnalyze(`SELECT o.o_date, sum(ol_amount), count(*)
		FROM orders o, orderline ol WHERE ol.ol_o_id = o.o_id
		GROUP BY o.o_date`, sch)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ColumnRef]bool{
		{Alias: "o", Column: "o_date"}:     true,
		{Alias: "ol", Column: "ol_amount"}: true,
	}
	got := map[ColumnRef]bool{}
	for _, o := range g.Outputs {
		got[o] = true
	}
	for cr := range want {
		if !got[cr] {
			t.Errorf("missing output column %+v (have %v)", cr, g.Outputs)
		}
	}
	// count(*) and the aggregate names must not appear.
	for _, o := range g.Outputs {
		if o.Column == "sum" || o.Column == "count" {
			t.Errorf("aggregate name leaked into outputs: %+v", o)
		}
	}
}

func TestAnalyzeOutputsDeduplicated(t *testing.T) {
	sch := analyzeSchema()
	g, err := ParseAndAnalyze("SELECT o_date, o_date FROM orders GROUP BY o_date", sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Outputs) != 1 {
		t.Fatalf("Outputs = %v", g.Outputs)
	}
}

func TestParseProjectedColumnForms(t *testing.T) {
	if _, err := parseProjectedColumn("  x  "); err != nil {
		t.Fatalf("simple column rejected: %v", err)
	}
	c, err := parseProjectedColumn("t . x")
	if err != nil || c.Qualifier != "t" || c.Column != "x" {
		t.Fatalf("qualified column = %+v, %v", c, err)
	}
	for _, bad := range []string{"", "1abc", "sum ( x )", "a.b.c"} {
		if _, err := parseProjectedColumn(bad); err == nil {
			t.Errorf("parseProjectedColumn(%q) succeeded", bad)
		}
	}
}

func TestIsSimpleIdent(t *testing.T) {
	cases := map[string]bool{
		"abc": true, "a_1": true, "_x": true,
		"": false, "1a": false, "a b": false, "a.b": false,
	}
	for s, want := range cases {
		if got := isSimpleIdent(s); got != want {
			t.Errorf("isSimpleIdent(%q) = %v", s, got)
		}
	}
}
