package sqlparse

import (
	"strings"
	"testing"

	"partadvisor/internal/schema"
	"partadvisor/internal/stats"
)

// analyzeSchema is a small TPC-C-flavoured schema exercising joins, nesting
// and correlation.
func analyzeSchema() *schema.Schema {
	attr := func(names ...string) []schema.Attribute {
		out := make([]schema.Attribute, len(names))
		for i, n := range names {
			out[i] = schema.Attribute{Name: n, Width: 8}
		}
		return out
	}
	return schema.New("mini",
		[]*schema.Table{
			{Name: "orders", Attributes: attr("o_id", "o_c_id", "o_date"), PrimaryKey: []string{"o_id"}},
			{Name: "orderline", Attributes: attr("ol_o_id", "ol_i_id", "ol_amount"), PrimaryKey: []string{"ol_o_id"}},
			{Name: "customer", Attributes: attr("c_id", "c_region"), PrimaryKey: []string{"c_id"}},
			{Name: "item", Attributes: attr("i_id", "i_price"), PrimaryKey: []string{"i_id"}},
		},
		[]schema.ForeignKey{
			{FromTable: "orders", FromAttr: "o_c_id", ToTable: "customer", ToAttr: "c_id"},
			{FromTable: "orderline", FromAttr: "ol_o_id", ToTable: "orders", ToAttr: "o_id"},
			{FromTable: "orderline", FromAttr: "ol_i_id", ToTable: "item", ToAttr: "i_id"},
		},
	)
}

func mustAnalyze(t *testing.T, sql string) *Graph {
	t.Helper()
	g, err := ParseAndAnalyze(sql, analyzeSchema())
	if err != nil {
		t.Fatalf("ParseAndAnalyze(%q): %v", sql, err)
	}
	return g
}

func TestAnalyzeJoinAndFilter(t *testing.T) {
	g := mustAnalyze(t, "SELECT * FROM orders o, customer c WHERE o.o_c_id = c.c_id AND c.c_region = 3")
	if len(g.Refs) != 2 {
		t.Fatalf("Refs = %v", g.Refs)
	}
	if len(g.Joins) != 1 {
		t.Fatalf("Joins = %v", g.Joins)
	}
	j := g.Joins[0]
	if j.Semi || j.Anti {
		t.Fatalf("plain join marked semi/anti: %v", j)
	}
	if j.LeftAlias != "o" || j.RightAlias != "c" {
		t.Fatalf("join aliases = %v", j)
	}
	if len(g.Filters) != 1 || g.Filters[0].Alias != "c" || g.Filters[0].Op != stats.OpEq {
		t.Fatalf("Filters = %v", g.Filters)
	}
}

func TestAnalyzeUnqualifiedColumns(t *testing.T) {
	g := mustAnalyze(t, "SELECT * FROM orders, customer WHERE o_c_id = c_id AND c_region > 2")
	if len(g.Joins) != 1 {
		t.Fatalf("Joins = %v", g.Joins)
	}
	if g.Joins[0].LeftAlias != "orders" || g.Joins[0].RightAlias != "customer" {
		t.Fatalf("join = %v", g.Joins[0])
	}
	if g.Filters[0].Alias != "customer" {
		t.Fatalf("filter alias = %v", g.Filters[0])
	}
}

func TestAnalyzeAmbiguousColumn(t *testing.T) {
	sch := schema.New("amb",
		[]*schema.Table{
			{Name: "a", Attributes: []schema.Attribute{{Name: "x", Width: 8}}},
			{Name: "b", Attributes: []schema.Attribute{{Name: "x", Width: 8}}},
		}, nil)
	_, err := ParseAndAnalyze("SELECT * FROM a, b WHERE x = 1", sch)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
}

func TestAnalyzeUnknownTableAndColumn(t *testing.T) {
	if _, err := ParseAndAnalyze("SELECT * FROM nosuch", analyzeSchema()); err == nil {
		t.Fatalf("unknown table accepted")
	}
	if _, err := ParseAndAnalyze("SELECT * FROM orders WHERE nope = 1", analyzeSchema()); err == nil {
		t.Fatalf("unknown column accepted")
	}
	if _, err := ParseAndAnalyze("SELECT * FROM orders o WHERE o.nope = 1", analyzeSchema()); err == nil {
		t.Fatalf("unknown qualified column accepted")
	}
	if _, err := ParseAndAnalyze("SELECT * FROM orders o WHERE z.o_id = 1", analyzeSchema()); err == nil {
		t.Fatalf("unknown alias accepted")
	}
}

func TestAnalyzeDuplicateAlias(t *testing.T) {
	_, err := ParseAndAnalyze("SELECT * FROM orders o, customer o", analyzeSchema())
	if err == nil || !strings.Contains(err.Error(), "duplicate alias") {
		t.Fatalf("want duplicate-alias error, got %v", err)
	}
}

func TestAnalyzeInSubquery(t *testing.T) {
	g := mustAnalyze(t, `SELECT * FROM customer c
		WHERE c.c_id IN (SELECT o.o_c_id FROM orders o WHERE o.o_date > 20200101)`)
	if len(g.Refs) != 2 {
		t.Fatalf("Refs = %v", g.Refs)
	}
	if len(g.Joins) != 1 {
		t.Fatalf("Joins = %v", g.Joins)
	}
	j := g.Joins[0]
	if !j.Semi || j.Anti {
		t.Fatalf("IN linkage should be semi: %v", j)
	}
	if j.LeftAlias != "c" || j.LeftCol != "c_id" || j.RightCol != "o_c_id" {
		t.Fatalf("linkage = %v", j)
	}
	if len(g.Filters) != 1 || g.Filters[0].Alias != "o" {
		t.Fatalf("subquery filter lost: %v", g.Filters)
	}
}

func TestAnalyzeNotInSubquery(t *testing.T) {
	g := mustAnalyze(t, "SELECT * FROM customer c WHERE c.c_id NOT IN (SELECT o_c_id FROM orders)")
	if len(g.Joins) != 1 || !g.Joins[0].Anti || !g.Joins[0].Semi {
		t.Fatalf("NOT IN linkage = %v", g.Joins)
	}
}

func TestAnalyzeExistsCorrelated(t *testing.T) {
	g := mustAnalyze(t, `SELECT * FROM orders o
		WHERE EXISTS (SELECT ol_o_id FROM orderline ol WHERE ol.ol_o_id = o.o_id AND ol.ol_amount > 100)`)
	if len(g.Joins) != 1 {
		t.Fatalf("Joins = %v", g.Joins)
	}
	if !g.Joins[0].Semi {
		t.Fatalf("EXISTS linkage should be semi: %v", g.Joins[0])
	}
	if len(g.Filters) != 1 || g.Filters[0].Alias != "ol" {
		t.Fatalf("Filters = %v", g.Filters)
	}
}

func TestAnalyzeUncorrelatedExistsRejected(t *testing.T) {
	_, err := ParseAndAnalyze("SELECT * FROM orders WHERE EXISTS (SELECT i_id FROM item)", analyzeSchema())
	if err == nil || !strings.Contains(err.Error(), "uncorrelated") {
		t.Fatalf("want uncorrelated error, got %v", err)
	}
}

func TestAnalyzeNestedTwoLevels(t *testing.T) {
	g := mustAnalyze(t, `SELECT * FROM customer c WHERE c.c_id IN (
		SELECT o.o_c_id FROM orders o WHERE o.o_id IN (
			SELECT ol.ol_o_id FROM orderline ol WHERE ol.ol_amount > 50))`)
	if len(g.Refs) != 3 {
		t.Fatalf("Refs = %v", g.Refs)
	}
	if len(g.Joins) != 2 {
		t.Fatalf("Joins = %v", g.Joins)
	}
	for _, j := range g.Joins {
		if !j.Semi {
			t.Fatalf("nested linkage not semi: %v", j)
		}
	}
}

func TestAnalyzeAliasUniquification(t *testing.T) {
	// The IN-subquery reuses alias "o"; graph aliases must stay unique and
	// (per SQL scoping) the inner references bind to the inner, renamed o.
	g := mustAnalyze(t, `SELECT * FROM orders o WHERE o.o_id IN (
		SELECT ol.ol_o_id FROM orderline ol, orders o WHERE ol.ol_o_id = o.o_id AND o.o_date > 5)`)
	seen := make(map[string]bool)
	for _, r := range g.Refs {
		if seen[r.Alias] {
			t.Fatalf("duplicate alias %q in graph refs %v", r.Alias, g.Refs)
		}
		seen[r.Alias] = true
	}
	if len(g.Refs) != 3 {
		t.Fatalf("Refs = %v", g.Refs)
	}
	// The filter o.o_date > 5 inside the subquery must bind to the inner
	// (renamed) orders alias, not to the outer "o".
	var filterAlias string
	for _, f := range g.Filters {
		if f.Column == "o_date" {
			filterAlias = f.Alias
		}
	}
	if filterAlias != "o_s1" {
		t.Fatalf("inner filter bound to %q, want o_s1 (refs %v)", filterAlias, g.Refs)
	}
}

func TestAnalyzeOrMergesToIn(t *testing.T) {
	g := mustAnalyze(t, "SELECT * FROM item WHERE i_price = 1 OR i_price = 2 OR i_price IN (3, 4)")
	if len(g.Filters) != 1 {
		t.Fatalf("Filters = %v", g.Filters)
	}
	f := g.Filters[0]
	if f.Op != stats.OpIn || len(f.Args) != 4 {
		t.Fatalf("merged filter = %v", f)
	}
}

func TestAnalyzeOrAcrossColumnsRejected(t *testing.T) {
	_, err := ParseAndAnalyze("SELECT * FROM item WHERE i_price = 1 OR i_id = 2", analyzeSchema())
	if err == nil || !strings.Contains(err.Error(), "OR") {
		t.Fatalf("want OR error, got %v", err)
	}
	_, err = ParseAndAnalyze("SELECT * FROM item WHERE i_price = 1 OR i_price > 2", analyzeSchema())
	if err == nil {
		t.Fatalf("want OR error for non-equality operand")
	}
}

func TestAnalyzeNotVariants(t *testing.T) {
	g := mustAnalyze(t, "SELECT * FROM item WHERE NOT i_price = 5 AND NOT i_price BETWEEN 1 AND 3 AND i_price NOT IN (7, 8)")
	if len(g.Filters) != 3 {
		t.Fatalf("Filters = %v", g.Filters)
	}
	if g.Filters[0].Op != stats.OpNe {
		t.Fatalf("NOT = should become <>: %v", g.Filters[0])
	}
	if !g.Filters[1].Neg || g.Filters[1].Op != stats.OpBetween {
		t.Fatalf("NOT BETWEEN should be negated filter: %v", g.Filters[1])
	}
	if !g.Filters[2].Neg || g.Filters[2].Op != stats.OpIn {
		t.Fatalf("NOT IN list should be negated filter: %v", g.Filters[2])
	}
	if g.Filters[1].Matches(2) {
		t.Fatalf("negated BETWEEN matched in-range value")
	}
	if !g.Filters[1].Matches(10) {
		t.Fatalf("negated BETWEEN rejected out-of-range value")
	}
}

func TestAnalyzeLiteralComparisonRejected(t *testing.T) {
	if _, err := ParseAndAnalyze("SELECT * FROM item WHERE 1 = 2", analyzeSchema()); err == nil {
		t.Fatalf("literal-literal comparison accepted")
	}
}

func TestAnalyzeNonEquiJoinRejected(t *testing.T) {
	_, err := ParseAndAnalyze("SELECT * FROM orders o, customer c WHERE o.o_c_id > c.c_id", analyzeSchema())
	if err == nil || !strings.Contains(err.Error(), "equality joins") {
		t.Fatalf("want equi-join error, got %v", err)
	}
}

func TestAnalyzeSameAliasEqualityDropped(t *testing.T) {
	g := mustAnalyze(t, "SELECT * FROM orders o WHERE o.o_id = o.o_c_id")
	if len(g.Joins) != 0 || len(g.Filters) != 0 {
		t.Fatalf("same-alias equality should be dropped: joins=%v filters=%v", g.Joins, g.Filters)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := mustAnalyze(t, `SELECT * FROM orders o, orderline ol, item i
		WHERE ol.ol_o_id = o.o_id AND ol.ol_i_id = i.i_id AND i.i_price > 10`)
	bt := g.BaseTables()
	if len(bt) != 3 || bt[0] != "item" || bt[1] != "orderline" || bt[2] != "orders" {
		t.Fatalf("BaseTables = %v", bt)
	}
	edges := g.JoinEdges()
	if len(edges) != 2 {
		t.Fatalf("JoinEdges = %v", edges)
	}
	if g.Table("ol") != "orderline" || g.Table("zz") != "" {
		t.Fatalf("Table lookup broken")
	}
	if got := g.FiltersFor("i"); len(got) != 1 {
		t.Fatalf("FiltersFor(i) = %v", got)
	}
	if got := g.FiltersFor("o"); len(got) != 0 {
		t.Fatalf("FiltersFor(o) = %v", got)
	}
}

func TestJoinString(t *testing.T) {
	j := Join{LeftAlias: "a", LeftCol: "x", RightAlias: "b", RightCol: "y"}
	if got := j.String(); got != "a.x = b.y" {
		t.Fatalf("String = %q", got)
	}
	j.Semi = true
	if got := j.String(); !strings.Contains(got, "semi") {
		t.Fatalf("semi String = %q", got)
	}
	j.Anti = true
	if got := j.String(); !strings.Contains(got, "anti") {
		t.Fatalf("anti String = %q", got)
	}
}

func TestAnalyzeSelfJoinEdgesExcluded(t *testing.T) {
	g := mustAnalyze(t, "SELECT * FROM orders o1, orders o2 WHERE o1.o_c_id = o2.o_id")
	if len(g.Joins) != 1 {
		t.Fatalf("Joins = %v", g.Joins)
	}
	if edges := g.JoinEdges(); len(edges) != 0 {
		t.Fatalf("self-join produced co-partitioning edges: %v", edges)
	}
}

func TestAnalyzeIsNullNoop(t *testing.T) {
	g := mustAnalyze(t, "SELECT * FROM item WHERE i_price IS NOT NULL")
	if len(g.Filters) != 1 {
		t.Fatalf("Filters = %v", g.Filters)
	}
	if !g.Filters[0].Matches(0) || !g.Filters[0].Matches(12345) {
		t.Fatalf("IS NULL noop filter should match everything")
	}
}
