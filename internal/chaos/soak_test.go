package chaos

import (
	"flag"
	"testing"
	"time"
)

// -chaos.episodes scales the soak: CI's short job runs 3, the nightly
// soak raises it (see .github/workflows/ci.yml).
var soakEpisodes = flag.Int("chaos.episodes", 2, "chaos soak episodes (each runs twice for the replay check)")

// TestSoak is the chaos soak: randomized crash/rejoin/partition schedules
// over full train-and-suggest episodes, with every invariant checked.
func TestSoak(t *testing.T) {
	rep, err := Run(Config{
		Seed:            1,
		Episodes:        *soakEpisodes,
		EpisodeDeadline: 5 * time.Minute,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("soak harness error: %v", err)
	}
	if got := len(rep.Episodes); got != *soakEpisodes {
		t.Fatalf("completed %d of %d episodes", got, *soakEpisodes)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}
	// The soak is only meaningful if the schedules actually exercised the
	// machinery: every episode must compose crashes with partitions, and
	// at least one episode must have executed a repair.
	repairs := 0
	for _, ep := range rep.Episodes {
		if ep.Crashes == 0 || ep.Partitions == 0 {
			t.Errorf("episode %d schedule has %d crashes, %d partitions — not a chaos episode",
				ep.Episode, ep.Crashes, ep.Partitions)
		}
		repairs += ep.Repairs
	}
	if repairs == 0 {
		t.Error("no episode executed a single repair — self-healing never engaged")
	}
}

// TestGuardedSoak runs the soak with the online guard armed: on top of
// every base invariant it checks rollback consistency (after each rollback
// the deployed layout equals best-known bit-for-bit) and guarded-replay
// determinism (identical veto/canary/rollback counts and rollback digests
// between run and replay). Three episodes, so the permanent-loss episode
// (every third) exercises the validator's veto path.
func TestGuardedSoak(t *testing.T) {
	rep, err := Run(Config{
		Seed:            1,
		Episodes:        3,
		EpisodeDeadline: 5 * time.Minute,
		Guarded:         true,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("guarded soak harness error: %v", err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}
	vetoes, rollbacks := 0, 0
	for _, ep := range rep.Episodes {
		vetoes += ep.GuardVetoes
		rollbacks += ep.Rollbacks
	}
	// The guard must have actually engaged somewhere in the soak: the
	// permanent-loss episode forces vetoes, the crash regimes force
	// regressed passes.
	if vetoes == 0 && rollbacks == 0 {
		t.Error("guarded soak never vetoed or rolled back — the guard was idle")
	}
}

// TestPermanentLossChangesDesign: after a permanent node loss the online
// agent must settle on a different design than the fault-free run — and
// reproducibly so under a fixed seed.
func TestPermanentLossChangesDesign(t *testing.T) {
	free1, lost1, err := PermanentLossAdaptation(5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if free1 == lost1 {
		t.Fatalf("permanent node loss did not change the suggested design (%s)", lost1)
	}
	free2, lost2, err := PermanentLossAdaptation(5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if free1 != free2 || lost1 != lost2 {
		t.Fatalf("adaptation not reproducible under fixed seed:\n fault-free %s vs %s\n faulted %s vs %s",
			free1, free2, lost1, lost2)
	}
}
