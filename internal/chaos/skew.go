package chaos

import (
	"fmt"
	"math"
	"time"

	"partadvisor/internal/benchmarks"
	"partadvisor/internal/core"
	"partadvisor/internal/exec"
	"partadvisor/internal/faults"
	"partadvisor/internal/hardware"
	"partadvisor/internal/partition"
	"partadvisor/internal/sqlparse"
)

// SkewConfig parameterizes the skew soak: adversarial traffic (Zipf-skewed
// keys plus a flash-crowd spike) replayed window by window against the
// hot-shard detection and mitigation loop, optionally composed with a
// crash/rejoin fault. The zero value is usable; Run fills in defaults.
type SkewConfig struct {
	// Seed derives the trace, the database and the fault window. Identical
	// seeds replay identical soaks.
	Seed int64
	// Episodes is the number of soak episodes (default 2). Every episode
	// runs twice (run + replay) for the determinism check.
	Episodes int
	// Scale multiplies the celebrity benchmark's generated row counts
	// (default 1 — the benchmark is small).
	Scale float64
	// Windows is the trace length per episode (default
	// benchmarks.CelebrityWindows).
	Windows int
	// HeatBound is the post-mitigation invariant: once a mitigation has
	// been adopted, a full measurement window's max/mean heat for the hot
	// table must stay at or below this bound (default 2, the detector's
	// default threshold).
	HeatBound float64
	// Faulty additionally crashes a node (with rejoin and self-healing
	// armed) at the exact moment the detector first fires — the unified
	// skew+chaos mode: the advisor reacts to the melting shard while a
	// node is away, so its mitigation deploys owe that node a catch-up
	// repair on rejoin. The conservation and determinism invariants must
	// hold through the repair traffic.
	Faulty bool
	// EpisodeDeadline is the per-run wall-clock watchdog (default 2
	// minutes).
	EpisodeDeadline time.Duration
	// Logf, when set, receives per-episode progress lines.
	Logf func(format string, args ...any)
	// Stop, when set, is polled between episodes: once true, the soak
	// returns the episodes completed so far.
	Stop func() bool
}

func (c SkewConfig) withDefaults() SkewConfig {
	if c.Episodes <= 0 {
		c.Episodes = 2
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Windows <= 0 {
		c.Windows = benchmarks.CelebrityWindows
	}
	if c.HeatBound <= 1 {
		c.HeatBound = 2
	}
	if c.EpisodeDeadline <= 0 {
		c.EpisodeDeadline = 2 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// SkewEpisode is one skew-soak episode's outcome and invariant verdicts.
type SkewEpisode struct {
	Episode int
	Seed    int64

	// TraceDigest identifies the adversarial trace; Events its total event
	// count.
	TraceDigest uint64
	Events      int

	// Detections counts hot-shard reports, Mitigations the adopted layout
	// changes. HeatDigest folds the engine's final cumulative heat counters.
	Detections  int
	Mitigations int
	HeatDigest  uint64

	// Final layout and its post-mitigation measurement-window imbalance.
	Layout         string
	FinalImbalance float64

	// Engine totals from the first run (the replay must match bit for bit).
	QueriesExecuted int
	Repartitions    int
	Repairs         int
	BytesMoved      int64
	DeployedBytes   int64
	RepairedBytes   int64

	// Violations holds every invariant breach (empty = episode passed).
	Violations []string
}

// SkewReport is a whole skew soak.
type SkewReport struct {
	Episodes []SkewEpisode
}

// Violations flattens every episode's breaches.
func (r *SkewReport) Violations() []string {
	var out []string
	for _, e := range r.Episodes {
		for _, v := range e.Violations {
			out = append(out, fmt.Sprintf("episode %d: %s", e.Episode, v))
		}
	}
	return out
}

// RunSkew executes the skew soak: cfg.Episodes episodes of adversarial
// traffic, each run twice under its derived seed — once to measure, once to
// check bit-identical replay — with the mitigation-engagement, heat-bound,
// conservation and watchdog invariants evaluated on both runs. A non-nil
// error means the harness itself broke; invariant breaches land in the
// report.
func RunSkew(cfg SkewConfig) (*SkewReport, error) {
	cfg = cfg.withDefaults()
	rep := &SkewReport{}
	for ep := 0; ep < cfg.Episodes; ep++ {
		if cfg.Stop != nil && cfg.Stop() {
			cfg.Logf("skew: stop requested, finishing after %d/%d episodes", ep, cfg.Episodes)
			return rep, nil
		}
		epSeed := cfg.Seed + 7919*int64(ep)
		er, err := runSkewEpisode(cfg, ep, epSeed)
		if err != nil {
			return rep, err
		}
		rep.Episodes = append(rep.Episodes, er)
		cfg.Logf("skew: episode %d/%d seed=%d events=%d detections=%d mitigations=%d repairs=%d final-imbalance=%.2f violations=%d",
			ep+1, cfg.Episodes, epSeed, er.Events, er.Detections, er.Mitigations,
			er.Repairs, er.FinalImbalance, len(er.Violations))
	}
	return rep, nil
}

// skewOutcome is the comparable digest of one episode run; the determinism
// invariant is outcome equality between run and replay.
type skewOutcome struct {
	traceDigest uint64
	heatDigest  uint64
	detections  int
	mitigations int
	layout      string
	finalIm     float64
	stats       core.OnlineStats
	queries     int
	reparts     int
	repairs     int
	moved       int64
	deployed    int64
	repaired    int64
}

type skewResult struct {
	out skewOutcome
	vio []string
	err error
}

func runSkewEpisode(cfg SkewConfig, ep int, epSeed int64) (SkewEpisode, error) {
	er := SkewEpisode{Episode: ep, Seed: epSeed}
	run := func() skewResult {
		out, vio, err := runSkewOnce(cfg, epSeed)
		return skewResult{out: out, vio: vio, err: err}
	}
	first, ok := withSkewDeadline(run, cfg.EpisodeDeadline)
	if !ok {
		er.Violations = append(er.Violations,
			fmt.Sprintf("watchdog: run still going after %v — stuck mitigation loop", cfg.EpisodeDeadline))
		return er, nil
	}
	if first.err != nil {
		return er, first.err
	}
	second, ok := withSkewDeadline(run, cfg.EpisodeDeadline)
	if !ok {
		er.Violations = append(er.Violations,
			fmt.Sprintf("watchdog: replay still going after %v — stuck mitigation loop", cfg.EpisodeDeadline))
		return er, nil
	}
	if second.err != nil {
		return er, second.err
	}
	vio := append(first.vio, second.vio...)
	if first.out != second.out {
		vio = append(vio, fmt.Sprintf("determinism: replay of seed %d diverged:\n  run    %+v\n  replay %+v",
			epSeed, first.out, second.out))
	}
	er.TraceDigest, er.HeatDigest = first.out.traceDigest, first.out.heatDigest
	er.Detections, er.Mitigations = first.out.detections, first.out.mitigations
	er.Layout, er.FinalImbalance = first.out.layout, first.out.finalIm
	er.QueriesExecuted, er.Repartitions, er.Repairs = first.out.queries, first.out.reparts, first.out.repairs
	er.BytesMoved, er.DeployedBytes, er.RepairedBytes = first.out.moved, first.out.deployed, first.out.repaired
	tr := benchmarks.CelebrityTrace(epSeed, cfg.Windows)
	er.Events = tr.Events()
	er.Violations = vio
	return er, nil
}

// withSkewDeadline runs f under a wall-clock watchdog (the runner holds
// only in-memory per-episode state, so an abandoned goroutine leaks
// nothing durable).
func withSkewDeadline(f func() skewResult, d time.Duration) (skewResult, bool) {
	ch := make(chan skewResult, 1)
	go func() { ch <- f() }()
	select {
	case r := <-ch:
		return r, true
	case <-time.After(d):
		return skewResult{}, false
	}
}

// skewWindowPaceSec is the simulated think-time closing each traffic
// window: monitoring windows occupy a fixed slice of simulated time beyond
// the queries they run. The absolute value matters in faulty mode — it is
// what carries the clock across the outage's rejoin instant mid-trace, so
// the lazy self-healer (which only acts when the engine does work) gets to
// observe the rejoin and run the catch-up repair with trace windows still
// remaining.
const skewWindowPaceSec = 0.25

// runSkewOnce replays one adversarial trace against the detection and
// mitigation loop and evaluates the per-run invariants.
func runSkewOnce(cfg SkewConfig, epSeed int64) (skewOutcome, []string, error) {
	var out skewOutcome
	var vio []string

	b := benchmarks.Celebrity()
	data := b.Generate(cfg.Scale, epSeed)
	hw := hardware.PostgresXLDisk()
	e := exec.New(b.Schema, data, hw, exec.Disk)
	sp := b.Space()
	wl := b.Workload
	tr := benchmarks.CelebrityTrace(epSeed, cfg.Windows)
	out.traceDigest = tr.Digest()

	// The natural locality layout a static advisor would pick: orders
	// hash-partitioned by the customer FK — the layout the celebrity melts.
	oi := sp.TableIndex("orders")
	ki := sp.Tables[oi].KeyIndex(partition.Key{"o_c_id"})
	if ki < 0 {
		return out, nil, fmt.Errorf("skew: o_c_id is not a candidate key of orders")
	}
	cur := sp.Apply(sp.InitialState(), partition.Action{Kind: partition.ActPartition, Table: oi, Key: ki})
	e.Deploy(cur, nil)
	e.ResetClock()
	gs := make([]*sqlparse.Graph, len(wl.Queries))
	for i, q := range wl.Queries {
		gs[i] = q.Graph
	}

	oc := core.NewOnlineCost(e, wl, nil)
	det := core.NewHotShardDetector(core.HotShardConfig{})
	size := len(wl.UniformFreq())
	lastMitigation := -1
	armed := false
	for w := 0; w < cfg.Windows; w++ {
		freq := tr.Mix(w, size)
		zero := true
		for _, v := range freq {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			freq = wl.UniformFreq()
		}
		// Drive one traffic window directly through the engine (OnlineCost
		// caches per-design measurements, so it would execute nothing after
		// the first window and the detector would see only quiet deltas),
		// then let the window's think-time pass.
		e.RunBatch(gs, 0)
		e.AdvanceClock(skewWindowPaceSec)
		rep, hot := det.Observe(e.ShardHeat())
		if !hot {
			continue
		}
		out.detections++
		if cfg.Faulty && !armed {
			// The unified skew+chaos twist: a node dies the instant the
			// advisor reacts. The detection time is deterministic for a
			// seed, so the schedule — and the whole episode — replays bit
			// for bit. The outage outlasts the online-cost layer's whole
			// retry budget (per crashed query, retries wait at the backoff
			// cap), so the first measurement pass exhausts its retries while
			// the node is away and the candidate deploy that follows lands
			// inside the outage — a catch-up obligation self-healing must
			// repair at rejoin.
			armed = true
			now := e.SimNow()
			outage := float64(len(wl.Queries))*float64(oc.MaxRetries)*oc.RetryBackoffCapSec + 1
			inj, err := faults.New(faults.Config{Crashes: []faults.NodeCrash{
				{Node: hw.Nodes - 1, Window: faults.Window{
					Start: now,
					End:   now + outage,
				}},
			}})
			if err != nil {
				return out, nil, fmt.Errorf("skew: fault schedule: %w", err)
			}
			e.SetFaults(inj)
			e.SetSelfHeal(true)
		}
		next, _, improved := core.MitigateHotShard(oc, cur, freq, rep.Table)
		if improved {
			cur = next
			out.mitigations++
			lastMitigation = w
		}
	}

	// Invariant: the trace is adversarial by construction — the soak is
	// vacuous if the detector never fired or no mitigation engaged.
	if out.detections == 0 {
		vio = append(vio, "engagement: detector never fired on a celebrity trace")
	}
	if out.mitigations == 0 {
		vio = append(vio, "engagement: no mitigation adopted on a melting shard")
	}

	// Invariant: post-mitigation heat bound. One fresh measurement window
	// on the adopted layout must keep the hot table's max/mean heat at or
	// below the bound.
	pre := e.ShardHeat()
	if _, err := e.Execute(wl.Queries[0].Graph, 0); err != nil {
		return out, vio, fmt.Errorf("skew: post-mitigation probe: %w", err)
	}
	out.finalIm = e.ShardHeat().Sub(pre).Imbalance("orders")
	if lastMitigation >= 0 && out.finalIm > cfg.HeatBound {
		vio = append(vio, fmt.Sprintf("heat bound: post-mitigation imbalance %.3f exceeds %.2f (layout %s)",
			out.finalIm, cfg.HeatBound, cur.String()))
	}

	// Invariant: cost-accounting conservation, fault or no fault.
	queries, reparts, moved := e.Counters()
	repairs, repaired := e.RepairStats()
	if moved != e.DeployedBytes+repaired {
		vio = append(vio, fmt.Sprintf("conservation: BytesMoved %d != DeployedBytes %d + RepairedBytes %d",
			moved, e.DeployedBytes, repaired))
	}
	if math.IsNaN(oc.Stats.ExecSeconds) || oc.Stats.ExecSeconds < 0 {
		vio = append(vio, fmt.Sprintf("accounting: ExecSeconds = %v", oc.Stats.ExecSeconds))
	}
	if cfg.Faulty && repairs == 0 {
		vio = append(vio, "engagement: faulty mode crashed a node but self-healing never repaired")
	}

	out.heatDigest = e.ShardHeat().Digest()
	out.layout = cur.Signature()
	out.stats = oc.Stats
	out.queries, out.reparts, out.repairs = queries, reparts, repairs
	out.moved, out.deployed, out.repaired = moved, e.DeployedBytes, repaired
	return out, vio, nil
}
