package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	osexec "os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Process-level crash-restart soak for advisord (DESIGN.md §11).
//
// Unlike the in-process fault soak in this package — which injects
// faults inside one advisor — this harness exercises the durability
// subsystem the only way it can honestly be exercised: it runs the real
// advisord binary with -state-dir, SIGKILLs it at seeded random points
// under live batch traffic (including mid-checkpoint-write), restarts
// it, and asserts the recovery invariants end to end:
//
//   - every tenant recorded in the manifest comes back after each kill,
//   - recovered checkpoints always verify or fall back a generation —
//     a deliberately truncated newest generation must be skipped for the
//     previous one, never decoded,
//   - checkpoint generation numbers are monotonic across restarts,
//   - after /readyz reports 200 the service answers traffic without a
//     single 5xx, and the readiness gap itself is bounded.

// CrashConfig parameterizes a crash-restart soak.
type CrashConfig struct {
	// Seed drives kill timing. Identical seeds replay identical schedules.
	Seed int64
	// Cycles is the number of SIGKILL/restart cycles (default 3). The
	// soak runs Cycles+1 process instances: each of the first Cycles is
	// killed, the final instance only verifies recovery.
	Cycles int
	// Tenants is the -preload tenant count (default 2).
	Tenants int
	// AdvisordBin is the advisord binary path (required).
	AdvisordBin string
	// LoadgenBin, when set, bridges a loadgen run with -max-retries
	// across the first kill/restart window and asserts its availability
	// counters (0 terminal 5xx/transport errors, >0 ok, >0 retries).
	LoadgenBin string
	// Addr is the host:port advisord listens on (default 127.0.0.1:18201).
	Addr string
	// StateDir is the durable state directory (required; reused across
	// all cycles — that is the point).
	StateDir string
	// MinUp/MaxUp bound the seeded uptime before each kill (default 2s/4s).
	MinUp, MaxUp time.Duration
	// ReadyTimeout bounds how long a restart may take to answer /readyz
	// 200 (default 60s). Exceeding it is a violation, not a hang.
	ReadyTimeout time.Duration
	// MidWriteCycle picks the kill that tries to land mid-checkpoint-write
	// by watching for checkpoint temp files (default 1; -1 disables). If
	// no write is caught in the watch window the kill proceeds and the
	// mid-write state is synthesized with a stray temp file, reported as
	// such.
	MidWriteCycle int
	// CorruptCycle picks the kill after which the newest checkpoint
	// generation of t1 is truncated, forcing the next recovery onto the
	// fallback ladder (default 1; -1 disables).
	CorruptCycle int
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
}

func (c CrashConfig) withDefaults() (CrashConfig, error) {
	if c.AdvisordBin == "" || c.StateDir == "" {
		return c, fmt.Errorf("chaos: crash soak needs AdvisordBin and StateDir")
	}
	if c.Cycles <= 0 {
		c.Cycles = 3
	}
	if c.Tenants <= 0 {
		c.Tenants = 2
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:18201"
	}
	if c.MinUp <= 0 {
		c.MinUp = 2 * time.Second
	}
	if c.MaxUp < c.MinUp {
		c.MaxUp = c.MinUp + 2*time.Second
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 60 * time.Second
	}
	if c.MidWriteCycle == 0 {
		c.MidWriteCycle = 1
	}
	if c.CorruptCycle == 0 {
		c.CorruptCycle = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// CrashCycleReport records one process instance's lifecycle.
type CrashCycleReport struct {
	Cycle       int     `json:"cycle"`
	RecoverySec float64 `json:"recovery_sec"`
	UptimeSec   float64 `json:"uptime_sec"`
	// Restored maps tenant → restored generation (-1 = fresh bootstrap);
	// empty on the first instance (nothing to recover).
	Restored       map[string]int64 `json:"restored,omitempty"`
	CorruptSkipped int              `json:"corrupt_skipped"`
	FreshBootstrap int              `json:"fresh_bootstraps"`
	// MidWriteKill is set when the SIGKILL landed while a checkpoint
	// temp file existed — a genuine mid-write kill. MidWriteSynthesized
	// marks the fallback where the torn-write debris was planted after a
	// timed kill instead.
	MidWriteKill        bool `json:"mid_write_kill"`
	MidWriteSynthesized bool `json:"mid_write_synthesized"`
	CorruptInjected     bool `json:"corrupt_injected"`
	Killed              bool `json:"killed"`
}

// CrashReport is the soak outcome. Violations empty = all invariants held.
type CrashReport struct {
	Cycles     []CrashCycleReport `json:"cycles"`
	Violations []string           `json:"violations,omitempty"`
	Loadgen    map[string]any     `json:"loadgen,omitempty"`
}

// readyPayload mirrors /readyz's 200 body.
type readyPayload struct {
	Status   string `json:"status"`
	Recovery *struct {
		Tenants []struct {
			ID             string `json:"id"`
			Generations    int    `json:"generations_found"`
			CorruptSkipped int    `json:"corrupt_skipped"`
			RestoredGen    int64  `json:"restored_generation"`
			FreshBootstrap bool   `json:"fresh_bootstrap"`
			Err            string `json:"error"`
		} `json:"tenants"`
		DurationSec float64 `json:"duration_sec"`
	} `json:"recovery"`
}

// crashGen is one generation file found on disk.
type crashGen struct {
	gen  uint64
	path string
}

// tenantGens lists a tenant's checkpoint generations newest-first.
func tenantGens(stateDir, tenant string) []crashGen {
	dir := filepath.Join(stateDir, "ckpt", tenant)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []crashGen
	for _, e := range entries {
		var g uint64
		if _, err := fmt.Sscanf(e.Name(), "gen-%d.ckpt", &g); err == nil &&
			strings.HasSuffix(e.Name(), ".ckpt") && !strings.Contains(e.Name(), ".tmp") {
			out = append(out, crashGen{gen: g, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gen > out[j].gen })
	return out
}

// anyCkptTempFile reports whether any tenant checkpoint directory holds
// a temp file right now — i.e. a checkpoint write is in flight.
func anyCkptTempFile(stateDir string) bool {
	root := filepath.Join(stateDir, "ckpt")
	tenants, err := os.ReadDir(root)
	if err != nil {
		return false
	}
	for _, td := range tenants {
		if !td.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(root, td.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".ckpt.tmp") {
				return true
			}
		}
	}
	return false
}

// RunCrashSoak executes the seeded kill/restart soak and returns the
// report. A non-nil error means the harness itself failed (binary
// missing, process refused to start); invariant failures land in
// Report.Violations instead.
func RunCrashSoak(cfg CrashConfig) (*CrashReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &CrashReport{}
	violate := func(format string, args ...any) {
		v := fmt.Sprintf(format, args...)
		rep.Violations = append(rep.Violations, v)
		cfg.Logf("VIOLATION: %s", v)
	}
	base := "http://" + cfg.Addr
	client := &http.Client{Timeout: 30 * time.Second}
	logDir := filepath.Join(cfg.StateDir, "logs")
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		return nil, err
	}

	prevRestored := map[string]int64{}
	prevNewest := map[string]uint64{}
	var corruptExpect int64 = -1 // fallback generation the next recovery must land on
	var loadgenCmd *osexec.Cmd
	loadgenOut := filepath.Join(logDir, "loadgen.json")

	for cycle := 0; cycle <= cfg.Cycles; cycle++ {
		cr := CrashCycleReport{Cycle: cycle}

		logPath := filepath.Join(logDir, fmt.Sprintf("advisord-%d.log", cycle))
		logFile, err := os.Create(logPath)
		if err != nil {
			return rep, err
		}
		cmd := osexec.Command(cfg.AdvisordBin,
			"-addr", cfg.Addr,
			"-state-dir", cfg.StateDir,
			"-preload", fmt.Sprint(cfg.Tenants),
			"-bench", "micro",
			"-scale", "0.05",
			"-offline-episodes", "2",
			"-advise-ms", "50",
			"-checkpoint-every-ms", "100",
			"-checkpoint-keep", "3",
			"-tick-ms", "20",
		)
		cmd.Stdout, cmd.Stderr = logFile, logFile
		if err := cmd.Start(); err != nil {
			logFile.Close()
			return rep, fmt.Errorf("chaos: start advisord (cycle %d): %w", cycle, err)
		}
		kill := func() {
			cmd.Process.Kill()
			cmd.Wait()
			logFile.Close()
		}

		// Wait for /readyz 200 — the bounded availability gap.
		began := time.Now()
		var ready readyPayload
		for {
			if time.Since(began) > cfg.ReadyTimeout {
				violate("cycle %d: not ready after %v (see %s)", cycle, cfg.ReadyTimeout, logPath)
				kill()
				rep.Cycles = append(rep.Cycles, cr)
				return rep, nil
			}
			resp, err := client.Get(base + "/readyz")
			if err == nil {
				code := resp.StatusCode
				if code == http.StatusOK {
					err = json.NewDecoder(resp.Body).Decode(&ready)
					resp.Body.Close()
					if err == nil {
						break
					}
					violate("cycle %d: readyz body: %v", cycle, err)
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		cr.RecoverySec = time.Since(began).Seconds()
		cfg.Logf("cycle %d: ready in %.2fs", cycle, cr.RecoverySec)

		// Invariant: every expected tenant exists.
		ids := listTenantIDs(client, base)
		for i := 1; i <= cfg.Tenants; i++ {
			id := fmt.Sprintf("t%d", i)
			if !ids[id] {
				violate("cycle %d: tenant %s missing after recovery (have %v)", cycle, id, ids)
			}
		}

		// Invariants on the recovery report (every instance after the first).
		if cycle > 0 {
			if ready.Recovery == nil {
				violate("cycle %d: readyz carried no recovery report", cycle)
			} else {
				cr.Restored = map[string]int64{}
				for _, tr := range ready.Recovery.Tenants {
					cr.Restored[tr.ID] = tr.RestoredGen
					cr.CorruptSkipped += tr.CorruptSkipped
					if tr.FreshBootstrap {
						cr.FreshBootstrap++
					}
					if tr.Err != "" {
						violate("cycle %d: tenant %s recovery error: %s", cycle, tr.ID, tr.Err)
					}
					if prev, ok := prevRestored[tr.ID]; ok && tr.RestoredGen < prev {
						violate("cycle %d: tenant %s restored generation went backwards: %d < %d",
							cycle, tr.ID, tr.RestoredGen, prev)
					}
					prevRestored[tr.ID] = tr.RestoredGen
				}
				if len(ready.Recovery.Tenants) != cfg.Tenants {
					violate("cycle %d: recovery report covers %d tenants, want %d",
						cycle, len(ready.Recovery.Tenants), cfg.Tenants)
				}
				if corruptExpect >= 0 {
					got, ok := cr.Restored["t1"]
					switch {
					case !ok:
						violate("cycle %d: corruption injected but t1 absent from recovery report", cycle)
					case cr.CorruptSkipped < 1:
						violate("cycle %d: truncated newest generation was not reported corrupt", cycle)
					case got != corruptExpect:
						violate("cycle %d: corrupt newest generation: restored %d, want fallback %d",
							cycle, got, corruptExpect)
					default:
						cfg.Logf("cycle %d: corrupt newest generation fell back to %d as required", cycle, got)
					}
					corruptExpect = -1
				}
			}
		}

		// Invariant: 5xx-free traffic after readiness.
		probeTraffic(client, base, func(format string, args ...any) {
			violate("cycle %d: %s", cycle, fmt.Sprintf(format, args...))
		})

		// Bridge a loadgen run across the first kill window.
		if cycle == 0 && cfg.LoadgenBin != "" {
			dur := cfg.MaxUp + 15*time.Second
			loadgenCmd = osexec.Command(cfg.LoadgenBin,
				"-addr", base,
				"-tenants", fmt.Sprint(cfg.Tenants),
				"-concurrency", "1",
				"-duration", dur.String(),
				"-max-retries", "200",
				"-out", loadgenOut,
			)
			lgLog, err := os.Create(filepath.Join(logDir, "loadgen.log"))
			if err != nil {
				kill()
				return rep, err
			}
			loadgenCmd.Stdout, loadgenCmd.Stderr = lgLog, lgLog
			if err := loadgenCmd.Start(); err != nil {
				kill()
				return rep, fmt.Errorf("chaos: start loadgen: %w", err)
			}
			cfg.Logf("cycle 0: loadgen bridging the kill window for %v", dur)
		}

		if cycle == cfg.Cycles {
			// Final instance: verification only — clean up and stop.
			if loadgenCmd != nil {
				loadgenCmd.Wait()
				checkLoadgenSummary(loadgenOut, rep, violate)
				loadgenCmd = nil
			}
			kill()
			rep.Cycles = append(rep.Cycles, cr)
			break
		}

		// Seeded uptime, then SIGKILL — on the designated cycle, try to
		// land the kill while a checkpoint temp file exists.
		up := cfg.MinUp + time.Duration(rng.Int63n(int64(cfg.MaxUp-cfg.MinUp)+1))
		time.Sleep(up)
		cr.UptimeSec = time.Since(began).Seconds()
		if cycle == cfg.MidWriteCycle {
			watchUntil := time.Now().Add(3 * time.Second)
			for time.Now().Before(watchUntil) {
				if anyCkptTempFile(cfg.StateDir) {
					cr.MidWriteKill = true
					break
				}
			}
		}
		cfg.Logf("cycle %d: SIGKILL after %.2fs up (mid-write=%v)", cycle, up.Seconds(), cr.MidWriteKill)
		cr.Killed = true
		kill()

		if cycle == cfg.MidWriteCycle && !cr.MidWriteKill {
			// The watch missed every write window: plant the same torn-write
			// debris a mid-write kill leaves, so the recovery path is
			// exercised regardless, and say so in the report.
			stray := filepath.Join(cfg.StateDir, "ckpt", "t1", "gen-99999999.ckpt.tmp999")
			if err := os.WriteFile(stray, []byte("torn checkpoint write"), 0o644); err == nil {
				cr.MidWriteSynthesized = true
			}
		}

		// Invariant: on-disk generation numbers are monotonic.
		for i := 1; i <= cfg.Tenants; i++ {
			id := fmt.Sprintf("t%d", i)
			gens := tenantGens(cfg.StateDir, id)
			if len(gens) == 0 {
				violate("cycle %d: tenant %s has no checkpoint generations after kill", cycle, id)
				continue
			}
			if gens[0].gen < prevNewest[id] {
				violate("cycle %d: tenant %s newest generation regressed: %d < %d",
					cycle, id, gens[0].gen, prevNewest[id])
			}
			prevNewest[id] = gens[0].gen
		}

		if cycle == cfg.CorruptCycle {
			gens := tenantGens(cfg.StateDir, "t1")
			if len(gens) >= 2 {
				fi, err := os.Stat(gens[0].path)
				if err == nil {
					if err := os.Truncate(gens[0].path, fi.Size()/2); err == nil {
						cr.CorruptInjected = true
						corruptExpect = int64(gens[1].gen)
						cfg.Logf("cycle %d: truncated newest generation %d; next recovery must fall back to %d",
							cycle, gens[0].gen, gens[1].gen)
					}
				}
			}
			if !cr.CorruptInjected {
				violate("cycle %d: could not inject corruption (%d generations on disk)", cycle, len(gens))
			}
		}

		rep.Cycles = append(rep.Cycles, cr)
	}

	if loadgenCmd != nil {
		loadgenCmd.Process.Kill()
		loadgenCmd.Wait()
	}
	return rep, nil
}

// listTenantIDs fetches GET /tenants and returns the tenant id set.
func listTenantIDs(client *http.Client, base string) map[string]bool {
	ids := map[string]bool{}
	resp, err := client.Get(base + "/tenants")
	if err != nil {
		return ids
	}
	defer resp.Body.Close()
	var stats []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return ids
	}
	for _, st := range stats {
		ids[st.ID] = true
	}
	return ids
}

// probeTraffic issues a burst of batch posts after readiness: every
// answer must be 200, or 429 carrying Retry-After — never a 5xx, never
// a transport error.
func probeTraffic(client *http.Client, base string, violate func(string, ...any)) {
	for i := 0; i < 10; i++ {
		resp, err := client.Post(base+"/tenants/t1/batch", "application/json",
			strings.NewReader(`{"repeat":1}`))
		if err != nil {
			violate("post-ready batch probe transport error: %v", err)
			return
		}
		code := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case code == http.StatusOK:
		case code == http.StatusTooManyRequests && retryAfter != "":
			time.Sleep(20 * time.Millisecond)
		default:
			violate("post-ready batch probe: status %d (Retry-After %q)", code, retryAfter)
			return
		}
	}
}

// checkLoadgenSummary asserts the bridged loadgen run saw availability
// across the kill window: some successes, some retries absorbing the
// gap, and zero terminal 5xx/transport errors.
func checkLoadgenSummary(path string, rep *CrashReport, violate func(string, ...any)) {
	data, err := os.ReadFile(path)
	if err != nil {
		violate("loadgen summary missing: %v", err)
		return
	}
	var sum struct {
		Total map[string]any `json:"total"`
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		violate("loadgen summary unreadable: %v", err)
		return
	}
	rep.Loadgen = sum.Total
	num := func(key string) float64 {
		v, _ := sum.Total[key].(float64)
		return v
	}
	if num("ok") == 0 {
		violate("loadgen admitted nothing across the kill window")
	}
	if num("retries") == 0 {
		violate("loadgen reported zero retries across a kill window — the gap was not measured")
	}
	if n := num("errors_5xx"); n > 0 {
		violate("loadgen saw %g terminal 5xx across the kill window", n)
	}
	if n := num("other_errors"); n > 0 {
		violate("loadgen saw %g terminal transport errors across the kill window", n)
	}
}

// crashErr is a tiny helper for tests that want one error out of a report.
func (r *CrashReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return errors.New(strings.Join(r.Violations, "; "))
}
