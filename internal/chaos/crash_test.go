package chaos

import (
	"encoding/json"
	"flag"
	"os"
	osexec "os/exec"
	"path/filepath"
	"testing"
	"time"
)

var (
	crashCycles = flag.Int("crash.cycles", 3, "SIGKILL/restart cycles for the crash soak")
	crashSeed   = flag.Int64("crash.seed", 1, "kill-schedule seed for the crash soak")
)

// TestCrashRestartSoak builds the real advisord and loadgen binaries and
// runs the process-level kill-9 soak against them. Gated behind
// CRASH_SOAK=1 (scripts/crash_soak.sh) because it compiles binaries and
// runs for tens of seconds — it is a soak, not a unit test.
func TestCrashRestartSoak(t *testing.T) {
	if os.Getenv("CRASH_SOAK") != "1" {
		t.Skip("set CRASH_SOAK=1 (or run scripts/crash_soak.sh) to run the kill-9 soak")
	}
	bins := t.TempDir()
	build := osexec.Command("go", "build", "-o", bins+string(os.PathSeparator),
		"./cmd/advisord", "./cmd/loadgen")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build binaries: %v\n%s", err, out)
	}

	stateDir := filepath.Join(t.TempDir(), "state")
	cfg := CrashConfig{
		Seed:        *crashSeed,
		Cycles:      *crashCycles,
		Tenants:     2,
		AdvisordBin: filepath.Join(bins, "advisord"),
		LoadgenBin:  filepath.Join(bins, "loadgen"),
		Addr:        "127.0.0.1:18201",
		StateDir:    stateDir,
		MinUp:       2 * time.Second,
		MaxUp:       4 * time.Second,
		Logf:        t.Logf,
	}
	rep, err := RunCrashSoak(cfg)
	if rep != nil {
		if data, jerr := json.MarshalIndent(rep, "", "  "); jerr == nil {
			t.Logf("crash soak report:\n%s", data)
		}
	}
	if err != nil {
		t.Fatalf("crash soak harness: %v", err)
	}
	if verr := rep.Err(); verr != nil {
		t.Fatalf("crash soak invariants violated: %v", verr)
	}

	// The soak must have delivered the advertised faults, not skated by:
	// every non-final cycle killed, corruption injected once, and the
	// mid-write cycle either caught a live checkpoint write or planted
	// torn-write debris for recovery to sweep.
	kills, corrupt, midWrite := 0, 0, false
	for _, c := range rep.Cycles {
		if c.Killed {
			kills++
		}
		if c.CorruptInjected {
			corrupt++
		}
		if c.MidWriteKill || c.MidWriteSynthesized {
			midWrite = true
		}
	}
	if kills < *crashCycles {
		t.Fatalf("only %d SIGKILLs delivered, want %d", kills, *crashCycles)
	}
	if *crashCycles > 1 && corrupt != 1 {
		t.Fatalf("corruption injected %d times, want exactly 1", corrupt)
	}
	if *crashCycles > 1 && !midWrite {
		t.Fatalf("no mid-checkpoint-write kill (real or synthesized) in the soak")
	}
}
