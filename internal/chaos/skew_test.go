package chaos

import (
	"testing"
	"time"
)

// TestSkewSoak replays the seeded celebrity trace (Zipf keys + flash-crowd
// spike) against the hot-shard detection and mitigation loop, with every
// invariant checked: engagement, post-mitigation heat bound, accounting
// conservation, and bit-identical replay.
func TestSkewSoak(t *testing.T) {
	rep, err := RunSkew(SkewConfig{
		Seed:            1,
		Episodes:        2,
		EpisodeDeadline: 5 * time.Minute,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("skew soak harness error: %v", err)
	}
	if got := len(rep.Episodes); got != 2 {
		t.Fatalf("completed %d of 2 episodes", got)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}
	for _, ep := range rep.Episodes {
		if ep.Mitigations == 0 {
			t.Errorf("episode %d adopted no mitigation — the trace never melted a shard", ep.Episode)
		}
		if ep.FinalImbalance > 2 {
			t.Errorf("episode %d post-mitigation imbalance %.2f", ep.Episode, ep.FinalImbalance)
		}
	}
}

// TestSkewSoakFaulty is the unified skew+chaos mode: the same adversarial
// trace with a mid-trace crash/rejoin and self-healing armed. Conservation
// and determinism must hold through the repair traffic, and the repair
// machinery must actually have engaged.
func TestSkewSoakFaulty(t *testing.T) {
	rep, err := RunSkew(SkewConfig{
		Seed:            1,
		Episodes:        1,
		Faulty:          true,
		EpisodeDeadline: 5 * time.Minute,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("skew soak harness error: %v", err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("invariant violation: %s", v)
	}
	for _, ep := range rep.Episodes {
		if ep.Repairs == 0 {
			t.Errorf("episode %d: crash scheduled but no repair ran", ep.Episode)
		}
	}
}
