// Package chaos implements a seeded soak harness for the self-healing
// cluster: it composes randomized fault schedules — crash/rejoin windows,
// recurring outages, network partitions, stragglers, degraded links,
// transient failures — over full train-and-suggest episodes of the online
// partitioning advisor, and checks a set of invariants after every
// episode:
//
//   - cost-accounting conservation: the engine's BytesMoved splits exactly
//     into deploy bytes and repair bytes, and the repair total equals the
//     sum over the repair log;
//   - determinism: replaying an episode under the identical seed yields
//     bit-identical stats, counters, and the identical suggested design;
//   - replica-placement consistency: a query errors if and only if some
//     fragment it needs has no accessible copy;
//   - liveness: a watchdog fails the episode when training stops making
//     progress before a wall-clock deadline.
//
// Everything is derived from one seed, so a red soak run is replayable.
package chaos

import (
	"math"
	"math/rand"

	"partadvisor/internal/faults"
)

// schedule is one episode's generated fault plan plus its composition
// summary (for reporting).
type schedule struct {
	cfg faults.Config
	// Crashes counts crash windows with a rejoin, Permanent those without
	// one; Partitions counts partition windows.
	Crashes    int
	Permanent  int
	Partitions int
}

// buildSchedule derives a randomized fault plan from the episode RNG. All
// times are multiples of unit — the fault-free runtime of one workload
// pass — so the windows land inside the training span regardless of the
// absolute simulated timescale. Every schedule has recurring crash+rejoin
// cycles and several partition windows; permanentLoss additionally takes
// one node down forever partway through.
func buildSchedule(rng *rand.Rand, nodes int, unit float64, permanentLoss bool) schedule {
	s := schedule{cfg: faults.Config{
		Seed:                 rng.Int63(),
		TransientFailureRate: 0.02,
	}}

	// A recurring outage guarantees crash and rejoin events keep firing
	// however long the episode runs in simulated time.
	crashNode := rng.Intn(nodes)
	period := (6 + 4*rng.Float64()) * unit
	s.cfg.PeriodicCrashes = append(s.cfg.PeriodicCrashes, faults.PeriodicCrash{
		Node:      crashNode,
		Period:    period,
		DownStart: 0.40 * period,
		DownEnd:   0.70 * period,
	})
	s.Crashes++

	// One early one-shot crash window with a rejoin, on a different node.
	oneShot := (crashNode + 1 + rng.Intn(nodes-1)) % nodes
	start := (2 + 3*rng.Float64()) * unit
	s.cfg.Crashes = append(s.cfg.Crashes, faults.NodeCrash{
		Node:   oneShot,
		Window: faults.Window{Start: start, End: start + (1+2*rng.Float64())*unit},
	})
	s.Crashes++

	if permanentLoss {
		// Take a third node down forever partway through training: queries
		// needing its shards fail until the agent routes around the loss.
		lost := oneShot
		for lost == crashNode || lost == oneShot {
			lost = rng.Intn(nodes)
		}
		s.cfg.Crashes = append(s.cfg.Crashes, faults.NodeCrash{
			Node:   lost,
			Window: faults.Window{Start: (20 + 10*rng.Float64()) * unit, End: math.Inf(1)},
		})
		s.Permanent++
	}

	// Partition windows marching outward geometrically: the total simulated
	// time of an episode is workload-dependent, so a spread from a few
	// units to hundreds guarantees at least one window overlaps training.
	at := (4 + 2*rng.Float64()) * unit
	for i := 0; i < 6; i++ {
		w := faults.Window{Start: at, End: at + (1.5+rng.Float64())*unit}
		s.cfg.Partitions = append(s.cfg.Partitions, faults.SeededBisect(rng.Int63(), nodes, w))
		s.Partitions++
		at = 2*w.End + rng.Float64()*unit
	}

	// Background noise: a straggler and a degraded interconnect window.
	s.cfg.Stragglers = append(s.cfg.Stragglers, faults.Straggler{
		Node:   rng.Intn(nodes),
		Factor: 2 + 2*rng.Float64(),
		Window: faults.Window{Start: 3 * unit, End: (30 + 20*rng.Float64()) * unit},
	})
	s.cfg.Degradations = append(s.cfg.Degradations, faults.NetDegradation{
		Factor: 0.3 + 0.4*rng.Float64(),
		Window: faults.Window{Start: 8 * unit, End: (12 + 6*rng.Float64()) * unit},
	})
	return s
}
