package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"partadvisor/internal/benchmarks"
	"partadvisor/internal/core"
	"partadvisor/internal/costmodel"
	"partadvisor/internal/exec"
	"partadvisor/internal/faults"
	"partadvisor/internal/guard"
	"partadvisor/internal/hardware"
	"partadvisor/internal/partition"
	"partadvisor/internal/sqlparse"
	"partadvisor/internal/workload"
)

// Config parameterizes a soak run. The zero value is usable: defaults are
// filled in by Run.
type Config struct {
	// Seed derives everything: database content, fault schedules, agent
	// initialization. Identical seeds replay identical soaks.
	Seed int64
	// Episodes is the number of train-and-suggest episodes (default 2).
	// Every episode runs twice (run + replay) for the determinism check.
	Episodes int
	// Scale multiplies the microbenchmark's generated row counts
	// (default 0.2).
	Scale float64
	// EpisodeDeadline is the per-run wall-clock watchdog: a training loop
	// that stops making progress becomes an invariant violation instead of
	// a hang (default 2 minutes).
	EpisodeDeadline time.Duration
	// Logf, when set, receives per-episode progress lines.
	Logf func(format string, args ...any)
	// Guarded arms the guard.DefaultConfig safety envelope around each
	// episode's online training and enables two additional invariants:
	// every rollback must leave the deployed layout bit-for-bit equal to
	// the best-known design, and veto/canary/rollback counts must replay
	// identically.
	Guarded bool
	// Stop, when set, is polled between episodes: once true, the soak
	// returns the episodes completed so far (a graceful shutdown, not a
	// violation).
	Stop func() bool
}

func (c Config) withDefaults() Config {
	if c.Episodes <= 0 {
		c.Episodes = 2
	}
	if c.Scale <= 0 {
		c.Scale = 0.2
	}
	if c.EpisodeDeadline <= 0 {
		c.EpisodeDeadline = 2 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// EpisodeReport is one episode's outcome and its invariant verdicts.
type EpisodeReport struct {
	Episode int
	Seed    int64

	// Schedule composition.
	Crashes    int // crash windows with a rejoin (incl. recurring)
	Permanent  int // crash windows without one (lost forever)
	Partitions int // network-partition windows

	// Engine and training totals (from the first run; the replay must
	// match them bit for bit).
	QueriesExecuted int
	Repartitions    int
	Repairs         int
	BytesMoved      int64
	DeployedBytes   int64
	RepairedBytes   int64
	Retries         int
	FailedQueries   int
	BreakerTrips    int

	// Guard accounting (zero unless Config.Guarded).
	GuardVetoes   int
	CanaryAborts  int
	BudgetDenials int
	Rollbacks     int

	// Suggestion is the design the advisor settled on, Cost its measured
	// workload cost.
	Suggestion string
	Cost       float64

	// Violations holds every invariant breach (empty = episode passed).
	Violations []string
}

// Report is a whole soak run.
type Report struct {
	Episodes []EpisodeReport
}

// Violations flattens every episode's breaches.
func (r *Report) Violations() []string {
	var out []string
	for _, e := range r.Episodes {
		for _, v := range e.Violations {
			out = append(out, fmt.Sprintf("episode %d: %s", e.Episode, v))
		}
	}
	return out
}

// Run executes the soak: cfg.Episodes episodes, each trained twice under
// its derived seed — once to measure, once to check bit-identical replay —
// with the conservation, placement and watchdog invariants evaluated on
// both runs. A non-nil error means the harness itself broke; invariant
// breaches land in the report instead.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{}
	for ep := 0; ep < cfg.Episodes; ep++ {
		if cfg.Stop != nil && cfg.Stop() {
			cfg.Logf("chaos: stop requested, finishing after %d/%d episodes", ep, cfg.Episodes)
			return rep, nil
		}
		epSeed := cfg.Seed + 7919*int64(ep)
		// Every third episode loses a node forever; the others only see
		// recoverable faults.
		er, err := runEpisode(cfg, ep, epSeed, ep%3 == 2)
		if err != nil {
			return rep, err
		}
		rep.Episodes = append(rep.Episodes, er)
		guardLine := ""
		if cfg.Guarded {
			guardLine = fmt.Sprintf(" vetoes=%d canary=%d budget=%d rollbacks=%d",
				er.GuardVetoes, er.CanaryAborts, er.BudgetDenials, er.Rollbacks)
		}
		cfg.Logf("chaos: episode %d/%d seed=%d crashes=%d permanent=%d partitions=%d repairs=%d repaired=%dB failedq=%d violations=%d%s",
			ep+1, cfg.Episodes, epSeed, er.Crashes, er.Permanent, er.Partitions,
			er.Repairs, er.RepairedBytes, er.FailedQueries, len(er.Violations), guardLine)
	}
	return rep, nil
}

// outcome is the comparable digest of one episode run; the determinism
// invariant is outcome equality between run and replay.
type outcome struct {
	stats            core.OnlineStats
	queries, reparts int
	repairs          int
	moved            int64
	deployed         int64
	repaired         int64
	sig              string
	cost             float64
	probeFails       int
	// rollbackDigest concatenates every rollback's (from, to, clock)
	// triple: with Config.Guarded, replay equality of this string is the
	// deterministic-guard invariant (identical rollback decisions at
	// identical simulated instants; the embedded stats cover the veto,
	// canary-abort and budget-denial counts).
	rollbackDigest string
}

type episodeResult struct {
	out   outcome
	sched schedule
	vio   []string
	err   error
}

func runEpisode(cfg Config, ep int, epSeed int64, permanentLoss bool) (EpisodeReport, error) {
	er := EpisodeReport{Episode: ep, Seed: epSeed}
	run := func() episodeResult {
		out, sched, vio, err := runOnce(cfg, epSeed, permanentLoss)
		return episodeResult{out: out, sched: sched, vio: vio, err: err}
	}
	first, ok := withDeadline(run, cfg.EpisodeDeadline)
	if !ok {
		er.Violations = append(er.Violations,
			fmt.Sprintf("watchdog: run still going after %v — stuck training step", cfg.EpisodeDeadline))
		return er, nil
	}
	if first.err != nil {
		return er, first.err
	}
	second, ok := withDeadline(run, cfg.EpisodeDeadline)
	if !ok {
		er.Violations = append(er.Violations,
			fmt.Sprintf("watchdog: replay still going after %v — stuck training step", cfg.EpisodeDeadline))
		return er, nil
	}
	if second.err != nil {
		return er, second.err
	}
	vio := append(first.vio, second.vio...)
	if first.out != second.out {
		vio = append(vio, fmt.Sprintf("determinism: replay of seed %d diverged:\n  run    %+v\n  replay %+v",
			epSeed, first.out, second.out))
	}
	er.Crashes, er.Permanent, er.Partitions = first.sched.Crashes, first.sched.Permanent, first.sched.Partitions
	er.QueriesExecuted, er.Repartitions, er.Repairs = first.out.queries, first.out.reparts, first.out.repairs
	er.BytesMoved, er.DeployedBytes, er.RepairedBytes = first.out.moved, first.out.deployed, first.out.repaired
	er.Retries, er.FailedQueries = first.out.stats.Retries, first.out.stats.FailedQueries
	er.BreakerTrips = first.out.stats.BreakerTrips
	er.GuardVetoes, er.CanaryAborts = first.out.stats.GuardVetoes, first.out.stats.CanaryAborts
	er.BudgetDenials, er.Rollbacks = first.out.stats.BudgetDenials, first.out.stats.Rollbacks
	er.Suggestion, er.Cost = first.out.sig, first.out.cost
	er.Violations = vio
	return er, nil
}

// withDeadline runs f under a wall-clock watchdog. On timeout the runner
// goroutine is abandoned (it holds no external resources — everything is
// in-memory and per-episode).
func withDeadline(f func() episodeResult, d time.Duration) (episodeResult, bool) {
	ch := make(chan episodeResult, 1)
	go func() { ch <- f() }()
	select {
	case r := <-ch:
		return r, true
	case <-time.After(d):
		return episodeResult{}, false
	}
}

// runOnce builds a fresh database + engine, arms a generated fault
// schedule and the self-healing layer, trains the advisor offline and
// online, asks for a design, and evaluates the per-run invariants.
func runOnce(cfg Config, epSeed int64, permanentLoss bool) (outcome, schedule, []string, error) {
	var out outcome
	var vio []string

	b := benchmarks.Micro()
	data := b.Generate(cfg.Scale, epSeed)
	hw := hardware.SystemXMemory()
	e := exec.New(b.Schema, data, hw, exec.Memory)
	sp := b.Space()
	wl := b.Workload
	freq := wl.UniformFreq()

	// Calibrate the schedule's time unit — one fault-free workload pass —
	// before any fault is armed.
	e.Deploy(sp.InitialState(), nil)
	gs := make([]*sqlparse.Graph, len(wl.Queries))
	for i, q := range wl.Queries {
		gs[i] = q.Graph
	}
	unit := e.RunBatch(gs, 0).Seconds
	if unit <= 0 {
		return out, schedule{}, nil, fmt.Errorf("chaos: calibration workload consumed no simulated time")
	}

	rng := rand.New(rand.NewSource(epSeed))
	sched := buildSchedule(rng, hw.Nodes, unit, permanentLoss)
	inj, err := faults.New(sched.cfg)
	if err != nil {
		return out, sched, nil, fmt.Errorf("chaos: generated schedule invalid: %w", err)
	}
	e.SetFaults(inj)
	e.ResetClock()
	e.SetSelfHeal(true)

	hp := core.Test()
	hp.Episodes = 16
	hp.OnlineEpisodes = 10
	adv, err := core.New(sp, wl, hp, epSeed)
	if err != nil {
		return out, sched, nil, fmt.Errorf("chaos: build advisor: %w", err)
	}
	cm := costmodel.New(e.TrueCatalog(), hw)
	offline := func(st *partition.State, f workload.FreqVector) float64 {
		return cm.WorkloadCost(st, wl, f)
	}
	if err := adv.TrainOffline(offline, nil); err != nil {
		return out, sched, nil, fmt.Errorf("chaos: offline training: %w", err)
	}
	oc := core.NewOnlineCost(e, wl, nil)
	var g *guard.Guard
	if cfg.Guarded {
		gcfg := guard.DefaultConfig()
		// The canary only arms when it is a strict prefix of a pass's cache
		// misses; the microbenchmark has two queries, so K=1.
		gcfg.CanaryQueries = 1
		g, err = guard.New(e, wl, gcfg)
		if err != nil {
			return out, sched, nil, fmt.Errorf("chaos: build guard: %w", err)
		}
		oc.Guard = g
	}
	if err := adv.TrainOnline(oc, nil); err != nil {
		return out, sched, nil, fmt.Errorf("chaos: online training: %w", err)
	}
	st, _, err := adv.SuggestBest(freq, oc)
	if err != nil {
		return out, sched, nil, fmt.Errorf("chaos: suggestion: %w", err)
	}

	// Invariant: replica-placement consistency — a query errors iff some
	// fragment it needs has no accessible copy. Probed with Explain, a
	// pure diagnostic (no clock advance, no transient draws, no heal), so
	// the accessibility snapshot and the probe see the same instant.
	down, unreach := e.NodeStates()
	inacc := func(n int) bool { return down[n] || unreach[n] }
	for _, q := range wl.Queries {
		expectFail := false
		for _, tbl := range q.Tables() {
			if !e.Cluster().Available(tbl, inacc) {
				expectFail = true
			}
		}
		plan, _ := e.Explain(q.Graph)
		gotFail := false
		for _, line := range plan {
			if strings.HasPrefix(line, "ERROR:") {
				gotFail = true
			}
		}
		if gotFail {
			out.probeFails++
		}
		if gotFail != expectFail {
			vio = append(vio, fmt.Sprintf(
				"placement: query %s errored=%v but fragment accessibility says shouldFail=%v",
				q.Name, gotFail, expectFail))
		}
	}

	// Invariant: cost-accounting conservation. Training is done and the
	// engine quiescent, so direct counter reads are single-threaded.
	queries, reparts, moved := e.Counters()
	repairs, repaired := e.RepairStats()
	var logBytes int64
	for _, r := range e.RepairLog() {
		logBytes += r.Bytes
	}
	if repaired != logBytes {
		vio = append(vio, fmt.Sprintf("conservation: RepairedBytes %d != repair-log sum %d", repaired, logBytes))
	}
	if moved != e.DeployedBytes+repaired {
		vio = append(vio, fmt.Sprintf("conservation: BytesMoved %d != DeployedBytes %d + RepairedBytes %d",
			moved, e.DeployedBytes, repaired))
	}
	if math.IsNaN(oc.Stats.ExecSeconds) || oc.Stats.ExecSeconds < 0 {
		vio = append(vio, fmt.Sprintf("accounting: ExecSeconds = %v", oc.Stats.ExecSeconds))
	}

	// Guard invariants: every rollback must have left the deployed layout
	// bit-for-bit equal to the best-known design (the record carries the
	// post-deploy self-check), and the rollback sequence digested into the
	// outcome must replay identically.
	if g != nil {
		var dig strings.Builder
		for ri, r := range g.Rollbacks() {
			if !r.Consistent {
				vio = append(vio, fmt.Sprintf(
					"rollback %d: deployed layout diverged from best-known design (%s -> %s at sim t=%g)",
					ri, r.FromSig, r.ToSig, r.At))
			}
			fmt.Fprintf(&dig, "%s>%s@%.17g;", r.FromSig, r.ToSig, r.At)
		}
		out.rollbackDigest = dig.String()
	}

	out.stats = oc.Stats
	out.queries, out.reparts, out.repairs = queries, reparts, repairs
	out.moved, out.deployed, out.repaired = moved, e.DeployedBytes, repaired
	out.sig = st.Signature()
	out.cost = oc.WorkloadCost(st, freq)
	return out, sched, vio, nil
}

// PermanentLossAdaptation trains the same-seeded advisor twice — once on a
// fault-free cluster, once under a schedule whose only fault is a node
// lost forever early in the online phase — and returns both suggested
// designs' signatures. Calling it twice with the same seed returns the
// identical pair: the adaptation is reproducible, not luck.
func PermanentLossAdaptation(seed int64, scale float64) (faultFree, faulted string, err error) {
	if scale <= 0 {
		scale = 0.2
	}
	suggest := func(lostNode int) (string, error) {
		b := benchmarks.Micro()
		data := b.Generate(scale, seed)
		hw := hardware.SystemXMemory()
		e := exec.New(b.Schema, data, hw, exec.Memory)
		sp := b.Space()
		wl := b.Workload
		if lostNode >= 0 {
			inj := faults.MustNew(faults.Config{Crashes: []faults.NodeCrash{
				{Node: lostNode, Window: faults.Window{Start: 1e-9, End: math.Inf(1)}},
			}})
			e.SetFaults(inj)
			e.SetSelfHeal(true)
		}
		hp := core.Test()
		hp.Episodes = 16
		hp.OnlineEpisodes = 10
		adv, err := core.New(sp, wl, hp, seed)
		if err != nil {
			return "", err
		}
		cm := costmodel.New(e.TrueCatalog(), hw)
		offline := func(st *partition.State, f workload.FreqVector) float64 {
			return cm.WorkloadCost(st, wl, f)
		}
		if err := adv.TrainOffline(offline, nil); err != nil {
			return "", err
		}
		oc := core.NewOnlineCost(e, wl, nil)
		if err := adv.TrainOnline(oc, nil); err != nil {
			return "", err
		}
		st, _, err := adv.SuggestBest(wl.UniformFreq(), oc)
		if err != nil {
			return "", err
		}
		return st.Signature(), nil
	}
	if faultFree, err = suggest(-1); err != nil {
		return "", "", err
	}
	if faulted, err = suggest(1); err != nil {
		return "", "", err
	}
	return faultFree, faulted, nil
}
