package faults

import (
	"math"
	"reflect"
	"testing"
)

func TestPartitionValidation(t *testing.T) {
	bad := []Config{
		{Partitions: []NetPartition{{Groups: [][]int{{0, 1}}, Window: Window{Start: 2, End: 1}}}},
		{Partitions: []NetPartition{{Groups: nil, Window: Window{Start: 0, End: 1}}}},
		{Partitions: []NetPartition{{Groups: [][]int{{}}, Window: Window{Start: 0, End: 1}}}},
		{Partitions: []NetPartition{{Groups: [][]int{{-1}}, Window: Window{Start: 0, End: 1}}}},
		{Partitions: []NetPartition{{Groups: [][]int{{0}, {0}}, Window: Window{Start: 0, End: 1}}}},
		{Partitions: []NetPartition{ // overlapping windows
			{Groups: [][]int{{0}}, Window: Window{Start: 0, End: 5}},
			{Groups: [][]int{{1}}, Window: Window{Start: 3, End: 8}},
		}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{Partitions: []NetPartition{
		{Groups: [][]int{{0, 2}}, Window: Window{Start: 0, End: 5}},
		{Groups: [][]int{{1}}, Window: Window{Start: 5, End: 8}},
	}}); err != nil {
		t.Fatalf("valid disjoint-window config rejected: %v", err)
	}
}

func TestPartitionGroupsAndReachability(t *testing.T) {
	in := MustNew(Config{Partitions: []NetPartition{
		{Groups: [][]int{{0, 2}}, Window: Window{Start: 1, End: 2}},
	}})
	if in.PartitionActive(0.5) {
		t.Fatal("partition active before its window")
	}
	if !in.PartitionActive(1.5) {
		t.Fatal("partition inactive inside its window")
	}
	if g := in.GroupOf(0, 0.5); g != -1 {
		t.Fatalf("GroupOf outside window = %d, want -1", g)
	}
	// Nodes 0 and 2 are the listed group; 1 and 3 fall into the implicit
	// leftover group.
	if a, b := in.GroupOf(0, 1.5), in.GroupOf(2, 1.5); a != b {
		t.Fatalf("nodes 0 and 2 in different groups: %d vs %d", a, b)
	}
	if a, b := in.GroupOf(1, 1.5), in.GroupOf(3, 1.5); a != b {
		t.Fatalf("leftover nodes 1 and 3 in different groups: %d vs %d", a, b)
	}
	if in.GroupOf(0, 1.5) == in.GroupOf(1, 1.5) {
		t.Fatal("cut nodes share a group")
	}
	if !in.Reachable(0, 2, 1.5) || in.Reachable(0, 1, 1.5) {
		t.Fatal("reachability does not follow the cut")
	}
	if !in.Reachable(0, 1, 2.5) {
		t.Fatal("nodes unreachable after the partition healed")
	}
}

func TestSeededBisectDeterministicAndNonTrivial(t *testing.T) {
	w := Window{Start: 0, End: 1}
	for n := 2; n <= 9; n++ {
		for seed := int64(0); seed < 20; seed++ {
			a := SeededBisect(seed, n, w)
			b := SeededBisect(seed, n, w)
			if !reflect.DeepEqual(a.Groups, b.Groups) {
				t.Fatalf("seed %d n %d: bisect not deterministic: %v vs %v", seed, n, a.Groups, b.Groups)
			}
			if len(a.Groups) != 2 || len(a.Groups[0]) == 0 || len(a.Groups[1]) == 0 {
				t.Fatalf("seed %d n %d: trivial bisect %v", seed, n, a.Groups)
			}
			if got := len(a.Groups[0]) + len(a.Groups[1]); got != n {
				t.Fatalf("seed %d n %d: bisect covers %d nodes", seed, n, got)
			}
		}
	}
}

// TestEventsDeterministicFeed: the same schedule and interval always yield
// the identical event sequence — the contract the self-healing layer's
// repair ordering rests on.
func TestEventsDeterministicFeed(t *testing.T) {
	cfg := Config{
		Crashes: []NodeCrash{
			{Node: 0, Window: Window{Start: 1, End: 3}},
			{Node: 2, Window: Window{Start: 2, End: math.Inf(1)}}, // permanent
		},
		PeriodicCrashes: []PeriodicCrash{
			{Node: 1, Period: 4, DownStart: 1, DownEnd: 2},
		},
		Partitions: []NetPartition{
			{Groups: [][]int{{0, 1}}, Window: Window{Start: 6, End: 7}},
		},
	}
	in := MustNew(cfg)
	a := in.Events(0, 12)
	b := in.Events(0, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event feed not deterministic:\n%v\n%v", a, b)
	}
	// Permanent loss must never emit a rejoin for node 2.
	for _, ev := range a {
		if ev.Kind == EventRejoin && ev.Node == 2 {
			t.Fatalf("permanent crash emitted a rejoin: %v", ev)
		}
	}
	// The periodic schedule expands to concrete occurrences: node 1 is
	// down during [1,2), [5,6), [9,10) — three crash and three rejoin
	// events inside (0, 12].
	crashes, rejoins := 0, 0
	for _, ev := range a {
		if ev.Node != 1 {
			continue
		}
		switch ev.Kind {
		case EventCrash:
			crashes++
		case EventRejoin:
			rejoins++
		}
	}
	if crashes != 3 || rejoins != 3 {
		t.Fatalf("periodic expansion: %d crashes, %d rejoins, want 3/3 (events: %v)", crashes, rejoins, a)
	}
	// Half-open interval: an event exactly at t0 is excluded, at t1
	// included.
	if evs := in.Events(1, 3); len(evs) == 0 || evs[0].At <= 1 {
		t.Fatalf("Events(1,3) = %v, want (1, 3] only", evs)
	}
	// Ordering is (At, Kind, Node, Partition) ascending.
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("events out of order: %v before %v", a[i-1], a[i])
		}
	}
}
