package faults

import (
	"fmt"
	"math"
	"sort"
)

// EventKind classifies a topology-change event of a fault schedule.
type EventKind int

const (
	// EventCrash marks a node going down (start of a crash window).
	EventCrash EventKind = iota
	// EventRejoin marks a node coming back (end of a crash window). A
	// crash window with End = +Inf is a permanent loss and never emits a
	// rejoin.
	EventRejoin
	// EventPartitionStart marks a network partition taking effect.
	EventPartitionStart
	// EventPartitionHeal marks a network partition healing.
	EventPartitionHeal
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventRejoin:
		return "rejoin"
	case EventPartitionStart:
		return "partition"
	case EventPartitionHeal:
		return "heal"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one topology change of the schedule: a node crashing or
// rejoining, or a partition starting or healing. The self-healing layer
// consumes rejoin and heal events to trigger repair.
type Event struct {
	Kind EventKind
	// At is the simulated time of the event.
	At float64
	// Node is the crashed/rejoined node (-1 for partition events).
	Node int
	// Partition indexes Config.Partitions (-1 for node events).
	Partition int
}

// String renders the event.
func (e Event) String() string {
	if e.Node >= 0 {
		return fmt.Sprintf("%s(node %d)@%.3f", e.Kind, e.Node, e.At)
	}
	return fmt.Sprintf("%s(partition %d)@%.3f", e.Kind, e.Partition, e.At)
}

// Events returns every schedule event with At in the half-open interval
// (t0, t1], sorted by (At, Kind, Node, Partition) — a deterministic feed:
// the same schedule and interval always yield the identical sequence.
// Periodic crash schedules are expanded to their concrete occurrences
// inside the interval.
func (in *Injector) Events(t0, t1 float64) []Event {
	if t1 <= t0 {
		return nil
	}
	var out []Event
	add := func(kind EventKind, at float64, node, part int) {
		if at > t0 && at <= t1 && !math.IsInf(at, 1) {
			out = append(out, Event{Kind: kind, At: at, Node: node, Partition: part})
		}
	}
	for _, cr := range in.cfg.Crashes {
		add(EventCrash, cr.Start, cr.Node, -1)
		add(EventRejoin, cr.End, cr.Node, -1)
	}
	for _, p := range in.cfg.PeriodicCrashes {
		// Expand the occurrences intersecting (t0, t1]; the loop is bounded
		// by (t1-t0)/Period + 2 iterations.
		k := math.Floor(t0/p.Period) - 1
		for {
			base := k * p.Period
			if base+p.DownStart > t1 {
				break
			}
			if k >= 0 {
				add(EventCrash, base+p.DownStart, p.Node, -1)
				add(EventRejoin, base+p.DownEnd, p.Node, -1)
			}
			k++
		}
	}
	for pi, p := range in.cfg.Partitions {
		add(EventPartitionStart, p.Start, -1, pi)
		add(EventPartitionHeal, p.End, -1, pi)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Partition < b.Partition
	})
	return out
}
