// Package faults implements a deterministic, seedable fault-injection
// subsystem for the simulated cluster: node crash/recovery schedules,
// per-node straggler slowdowns, transient query failures, and windowed
// network-bandwidth degradation.
//
// Faults are defined over the engine's *simulated* clock (seconds since
// the injector was armed), so a fault schedule composed with a
// deterministic engine yields bit-identical runs: same seed, same
// schedule, same measurements. The only stochastic source — transient
// query failures — draws from a self-contained splitmix64 stream seeded
// by Config.Seed, and draws nothing at all when the failure rate is zero.
package faults

import (
	"fmt"
	"math"
	"sort"
)

// Window is a half-open interval [Start, End) of simulated seconds.
type Window struct {
	Start, End float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Overlap returns the length of the intersection of the window with
// [t0, t1).
func (w Window) Overlap(t0, t1 float64) float64 {
	lo := math.Max(w.Start, t0)
	hi := math.Min(w.End, t1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// NodeCrash takes one node down for the duration of the window. Queries
// needing a hash shard stored on the node fail; replicated tables fail
// over to surviving copies.
type NodeCrash struct {
	Node int
	Window
}

// PeriodicCrash crashes a node on a repeating schedule: the node is down
// whenever DownStart <= mod(t, Period) < DownEnd. It models recurring
// maintenance/failure regimes without enumerating an unbounded window
// list.
type PeriodicCrash struct {
	Node                       int
	Period, DownStart, DownEnd float64
}

// down reports whether the periodic schedule has the node down at t.
func (p PeriodicCrash) down(t float64) bool {
	if t < 0 {
		return false
	}
	ph := math.Mod(t, p.Period)
	return ph >= p.DownStart && ph < p.DownEnd
}

// Straggler multiplies a node's compute/scan time by Factor (> 1) during
// the window.
type Straggler struct {
	Node   int
	Factor float64
	Window
}

// NetDegradation multiplies the interconnect bandwidth by Factor
// (0 < Factor <= 1) during the window, slowing shuffles, broadcasts and
// repartitioning.
type NetDegradation struct {
	Factor float64
	Window
}

// NetPartition splits the cluster into isolated groups for the duration of
// the window: nodes inside one group reach each other, nodes in different
// groups cannot exchange data at all (no shuffles, no broadcasts, no
// replica reads across the cut). Nodes listed in no group form one
// implicit final group of their own. When the window closes the partition
// heals and the cluster is fully connected again.
type NetPartition struct {
	// Groups are disjoint, non-empty node subsets.
	Groups [][]int
	Window
}

// groupOf returns the group index of a node under this partition:
// the listed group, or len(Groups) for unlisted nodes (the implicit
// leftover group).
func (p NetPartition) groupOf(node int) int {
	for gi, g := range p.Groups {
		for _, n := range g {
			if n == node {
				return gi
			}
		}
	}
	return len(p.Groups)
}

// SeededBisect derives a deterministic two-sided partition of nodes
// [0, n): each node joins side A or B by a stateless splitmix64 draw on
// (seed, node). The draw is re-salted until both sides are non-empty, so
// the same (seed, n) always yields the same non-trivial cut.
func SeededBisect(seed int64, n int, w Window) NetPartition {
	if n < 2 {
		panic(fmt.Sprintf("faults: cannot bisect %d nodes", n))
	}
	for salt := uint64(0); ; salt++ {
		var a, b []int
		for node := 0; node < n; node++ {
			s := splitmix(uint64(seed) + 0x9e3779b97f4a7c15*salt)
			s = splitmix(s + 0x9e3779b97f4a7c15*uint64(node+1))
			if s&1 == 0 {
				a = append(a, node)
			} else {
				b = append(b, node)
			}
		}
		if len(a) > 0 && len(b) > 0 {
			return NetPartition{Groups: [][]int{a, b}, Window: w}
		}
	}
}

// Config is a complete declarative fault schedule.
type Config struct {
	// Seed seeds the transient-failure stream. Schedules with the same
	// seed produce identical failure sequences.
	Seed int64
	// Crashes are one-shot node outages.
	Crashes []NodeCrash
	// PeriodicCrashes are repeating node outages.
	PeriodicCrashes []PeriodicCrash
	// Stragglers are windowed per-node slowdowns.
	Stragglers []Straggler
	// Degradations are windowed interconnect-bandwidth reductions.
	Degradations []NetDegradation
	// Partitions are windowed network partitions. Windows of distinct
	// partitions must not overlap (one cut at a time keeps the reachability
	// relation unambiguous).
	Partitions []NetPartition
	// TransientFailureRate is the probability that one query execution
	// fails transiently (connection reset, worker restart). Zero disables
	// the stream entirely — no random draws are made.
	TransientFailureRate float64
}

// Validate checks the schedule for inconsistencies.
func (c Config) Validate() error {
	for _, cr := range c.Crashes {
		if cr.Node < 0 {
			return fmt.Errorf("faults: crash on negative node %d", cr.Node)
		}
		if cr.End <= cr.Start {
			return fmt.Errorf("faults: crash window [%g, %g) on node %d is empty", cr.Start, cr.End, cr.Node)
		}
	}
	for _, p := range c.PeriodicCrashes {
		if p.Node < 0 {
			return fmt.Errorf("faults: periodic crash on negative node %d", p.Node)
		}
		if p.Period <= 0 {
			return fmt.Errorf("faults: periodic crash period %g must be positive", p.Period)
		}
		if p.DownStart < 0 || p.DownEnd <= p.DownStart || p.DownEnd > p.Period {
			return fmt.Errorf("faults: periodic crash down-window [%g, %g) must satisfy 0 <= start < end <= period %g",
				p.DownStart, p.DownEnd, p.Period)
		}
	}
	for _, s := range c.Stragglers {
		if s.Node < 0 {
			return fmt.Errorf("faults: straggler on negative node %d", s.Node)
		}
		if s.Factor <= 1 {
			return fmt.Errorf("faults: straggler factor %g must exceed 1", s.Factor)
		}
		if s.End <= s.Start {
			return fmt.Errorf("faults: straggler window [%g, %g) on node %d is empty", s.Start, s.End, s.Node)
		}
	}
	for _, d := range c.Degradations {
		if d.Factor <= 0 || d.Factor > 1 {
			return fmt.Errorf("faults: degradation factor %g must be in (0, 1]", d.Factor)
		}
		if d.End <= d.Start {
			return fmt.Errorf("faults: degradation window [%g, %g) is empty", d.Start, d.End)
		}
	}
	for pi, p := range c.Partitions {
		if p.End <= p.Start {
			return fmt.Errorf("faults: partition window [%g, %g) is empty", p.Start, p.End)
		}
		if len(p.Groups) == 0 {
			return fmt.Errorf("faults: partition %d has no groups", pi)
		}
		seen := make(map[int]bool)
		for gi, g := range p.Groups {
			if len(g) == 0 {
				return fmt.Errorf("faults: partition %d group %d is empty", pi, gi)
			}
			for _, n := range g {
				if n < 0 {
					return fmt.Errorf("faults: partition %d contains negative node %d", pi, n)
				}
				if seen[n] {
					return fmt.Errorf("faults: partition %d lists node %d in two groups", pi, n)
				}
				seen[n] = true
			}
		}
		for pj, q := range c.Partitions[pi+1:] {
			if p.Overlap(q.Start, q.End) > 0 {
				return fmt.Errorf("faults: partitions %d and %d have overlapping windows", pi, pi+1+pj)
			}
		}
	}
	if c.TransientFailureRate < 0 || c.TransientFailureRate >= 1 {
		return fmt.Errorf("faults: transient failure rate %g must be in [0, 1)", c.TransientFailureRate)
	}
	return nil
}

// Injector evaluates a fault schedule against the simulated clock. It is
// not safe for concurrent use on its own; the execution engine serializes
// access under its mutex, which also keeps the transient-failure stream
// deterministic.
type Injector struct {
	cfg   Config
	state uint64 // splitmix64 state for transient failures
	draws uint64 // number of transient draws made (diagnostics)
}

// New validates a schedule and arms an injector for it.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, state: uint64(cfg.Seed)}, nil
}

// MustNew is New for schedules known valid at compile time; it panics on
// an invalid config.
func MustNew(cfg Config) *Injector {
	in, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return in
}

// Config returns the armed schedule (to arm a fresh injector with the
// same regime, e.g. for a second deterministic evaluation pass).
func (in *Injector) Config() Config { return in.cfg }

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// NodeDown reports whether the node is crashed at simulated time now.
func (in *Injector) NodeDown(node int, now float64) bool {
	for _, cr := range in.cfg.Crashes {
		if cr.Node == node && cr.Contains(now) {
			return true
		}
	}
	for _, p := range in.cfg.PeriodicCrashes {
		if p.Node == node && p.down(now) {
			return true
		}
	}
	return false
}

// PermanentlyLost reports whether the node is inside a crash window that
// never closes (End = +Inf) at simulated time now — the schedule's encoding
// of a permanent node loss (such a node never emits a rejoin event, see
// Events). Guards use this to veto designs that would place unreplicated
// shards with no surviving copy.
func (in *Injector) PermanentlyLost(node int, now float64) bool {
	for _, cr := range in.cfg.Crashes {
		if cr.Node == node && cr.Contains(now) && math.IsInf(cr.End, 1) {
			return true
		}
	}
	return false
}

// SlowdownFactor returns the node's compute/scan time multiplier at now
// (>= 1; overlapping stragglers compound).
func (in *Injector) SlowdownFactor(node int, now float64) float64 {
	f := 1.0
	for _, s := range in.cfg.Stragglers {
		if s.Node == node && s.Contains(now) {
			f *= s.Factor
		}
	}
	return f
}

// NetFactor returns the interconnect-bandwidth multiplier at now
// (0 < f <= 1; overlapping degradations compound).
func (in *Injector) NetFactor(now float64) float64 {
	f := 1.0
	for _, d := range in.cfg.Degradations {
		if d.Contains(now) {
			f *= d.Factor
		}
	}
	return f
}

// TransientFailure draws once from the failure stream and reports whether
// this query execution fails transiently. No draw is made when the rate
// is zero, so schedules without transient failures stay deterministic
// regardless of how often queries run.
func (in *Injector) TransientFailure() bool {
	if in.cfg.TransientFailureRate <= 0 {
		return false
	}
	in.draws++
	u := float64(in.next()>>11) / (1 << 53)
	return u < in.cfg.TransientFailureRate
}

// TransientFailureAt reports whether the query at the given position of
// the given batch fails transiently. Unlike TransientFailure, the draw is
// derived purely from (seed, batch, position) — a stateless splitmix64
// evaluation, independent of arrival order and of the sequential stream —
// so concurrent executors of a batch get deterministic, race-free
// verdicts: same schedule, same batch, same position ⇒ same draw,
// regardless of GOMAXPROCS or goroutine scheduling. Safe for concurrent
// use (reads only the immutable config).
func (in *Injector) TransientFailureAt(batch uint64, position int) bool {
	if in.cfg.TransientFailureRate <= 0 {
		return false
	}
	// One splitmix64 scramble per mixed-in word, then a final output step:
	// the standard stateless way to derive an independent stream per key.
	s := uint64(in.cfg.Seed)
	s = splitmix(s + 0x9e3779b97f4a7c15*batch)
	s = splitmix(s + 0x9e3779b97f4a7c15*uint64(position+1))
	u := float64(s>>11) / (1 << 53)
	return u < in.cfg.TransientFailureRate
}

// splitmix is the splitmix64 output function over one state word.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// GroupOf returns the partition group of a node at simulated time now:
// -1 when no partition is active (the cluster is fully connected), the
// node's group index otherwise (unlisted nodes share the implicit group
// len(Groups)). At most one partition is active at a time (Validate
// rejects overlapping windows).
func (in *Injector) GroupOf(node int, now float64) int {
	for _, p := range in.cfg.Partitions {
		if p.Contains(now) {
			return p.groupOf(node)
		}
	}
	return -1
}

// PartitionActive reports whether a network partition is in effect at now.
func (in *Injector) PartitionActive(now float64) bool {
	for _, p := range in.cfg.Partitions {
		if p.Contains(now) {
			return true
		}
	}
	return false
}

// Reachable reports whether nodes a and b can exchange data at now: they
// are always reachable while no partition is active, and must share a
// group while one is.
func (in *Injector) Reachable(a, b int, now float64) bool {
	for _, p := range in.cfg.Partitions {
		if p.Contains(now) {
			return p.groupOf(a) == p.groupOf(b)
		}
	}
	return true
}

// Degraded reports whether any fault (crash, straggler, degradation,
// partition) is active at now. Runtimes measured while degraded must not
// be cached as the design's steady-state cost.
func (in *Injector) Degraded(now float64) bool {
	for _, cr := range in.cfg.Crashes {
		if cr.Contains(now) {
			return true
		}
	}
	for _, p := range in.cfg.PeriodicCrashes {
		if p.down(now) {
			return true
		}
	}
	for _, s := range in.cfg.Stragglers {
		if s.Contains(now) {
			return true
		}
	}
	for _, d := range in.cfg.Degradations {
		if d.Contains(now) {
			return true
		}
	}
	for _, p := range in.cfg.Partitions {
		if p.Contains(now) {
			return true
		}
	}
	return false
}

// DegradedOverlap returns the number of seconds in [t0, t1) during which
// at least one fault is active — the exact measure of the union of all
// fault windows clipped to the interval.
func (in *Injector) DegradedOverlap(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	var ivals [][2]float64
	add := func(w Window) {
		lo := math.Max(w.Start, t0)
		hi := math.Min(w.End, t1)
		if hi > lo {
			ivals = append(ivals, [2]float64{lo, hi})
		}
	}
	for _, cr := range in.cfg.Crashes {
		add(cr.Window)
	}
	for _, s := range in.cfg.Stragglers {
		add(s.Window)
	}
	for _, d := range in.cfg.Degradations {
		add(d.Window)
	}
	for _, p := range in.cfg.Partitions {
		add(p.Window)
	}
	for _, p := range in.cfg.PeriodicCrashes {
		// Expand the occurrences intersecting [t0, t1). The loop is
		// bounded by (t1-t0)/Period + 2 iterations.
		k := math.Floor(t0/p.Period) - 1
		for {
			base := k * p.Period
			if base+p.DownStart >= t1 {
				break
			}
			if k >= 0 {
				add(Window{Start: base + p.DownStart, End: base + p.DownEnd})
			}
			k++
		}
	}
	if len(ivals) == 0 {
		return 0
	}
	sort.Slice(ivals, func(i, j int) bool { return ivals[i][0] < ivals[j][0] })
	total := 0.0
	curLo, curHi := ivals[0][0], ivals[0][1]
	for _, iv := range ivals[1:] {
		if iv[0] > curHi {
			total += curHi - curLo
			curLo, curHi = iv[0], iv[1]
			continue
		}
		if iv[1] > curHi {
			curHi = iv[1]
		}
	}
	return total + (curHi - curLo)
}
