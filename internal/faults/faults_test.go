package faults

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Crashes: []NodeCrash{{Node: -1, Window: Window{0, 1}}}},
		{Crashes: []NodeCrash{{Node: 0, Window: Window{2, 1}}}},
		{PeriodicCrashes: []PeriodicCrash{{Node: 0, Period: 0, DownStart: 0, DownEnd: 1}}},
		{PeriodicCrashes: []PeriodicCrash{{Node: 0, Period: 10, DownStart: 5, DownEnd: 11}}},
		{PeriodicCrashes: []PeriodicCrash{{Node: 0, Period: 10, DownStart: 5, DownEnd: 5}}},
		{Stragglers: []Straggler{{Node: 0, Factor: 1, Window: Window{0, 1}}}},
		{Stragglers: []Straggler{{Node: 0, Factor: 2, Window: Window{1, 1}}}},
		{Degradations: []NetDegradation{{Factor: 0, Window: Window{0, 1}}}},
		{Degradations: []NetDegradation{{Factor: 1.5, Window: Window{0, 1}}}},
		{TransientFailureRate: 1},
		{TransientFailureRate: -0.1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	if _, err := New(Config{
		Crashes:              []NodeCrash{{Node: 1, Window: Window{0, 5}}},
		PeriodicCrashes:      []PeriodicCrash{{Node: 2, Period: 10, DownStart: 0, DownEnd: 5}},
		Stragglers:           []Straggler{{Node: 0, Factor: 3, Window: Window{2, 4}}},
		Degradations:         []NetDegradation{{Factor: 0.25, Window: Window{1, 3}}},
		TransientFailureRate: 0.1,
	}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestNodeDown(t *testing.T) {
	in := MustNew(Config{
		Crashes:         []NodeCrash{{Node: 1, Window: Window{2, 5}}},
		PeriodicCrashes: []PeriodicCrash{{Node: 2, Period: 10, DownStart: 6, DownEnd: 10}},
	})
	cases := []struct {
		node int
		t    float64
		down bool
	}{
		{1, 1.9, false}, {1, 2, true}, {1, 4.99, true}, {1, 5, false},
		{0, 3, false},
		{2, 5.9, false}, {2, 6, true}, {2, 9.9, true}, {2, 10, false},
		{2, 16, true}, {2, 25.5, false}, {2, 26.5, true},
	}
	for _, c := range cases {
		if got := in.NodeDown(c.node, c.t); got != c.down {
			t.Errorf("NodeDown(%d, %g) = %v, want %v", c.node, c.t, got, c.down)
		}
	}
}

func TestFactors(t *testing.T) {
	in := MustNew(Config{
		Stragglers: []Straggler{
			{Node: 0, Factor: 2, Window: Window{0, 10}},
			{Node: 0, Factor: 3, Window: Window{5, 10}},
		},
		Degradations: []NetDegradation{
			{Factor: 0.5, Window: Window{0, 10}},
			{Factor: 0.5, Window: Window{5, 10}},
		},
	})
	if got := in.SlowdownFactor(0, 1); got != 2 {
		t.Errorf("SlowdownFactor(0, 1) = %g, want 2", got)
	}
	if got := in.SlowdownFactor(0, 7); got != 6 {
		t.Errorf("SlowdownFactor(0, 7) = %g, want 6 (compounded)", got)
	}
	if got := in.SlowdownFactor(1, 7); got != 1 {
		t.Errorf("SlowdownFactor(1, 7) = %g, want 1", got)
	}
	if got := in.NetFactor(1); got != 0.5 {
		t.Errorf("NetFactor(1) = %g, want 0.5", got)
	}
	if got := in.NetFactor(7); got != 0.25 {
		t.Errorf("NetFactor(7) = %g, want 0.25 (compounded)", got)
	}
	if got := in.NetFactor(20); got != 1 {
		t.Errorf("NetFactor(20) = %g, want 1", got)
	}
}

func TestTransientFailureDeterminism(t *testing.T) {
	draw := func(seed int64, n int) []bool {
		in := MustNew(Config{Seed: seed, TransientFailureRate: 0.3})
		out := make([]bool, n)
		for i := range out {
			out[i] = in.TransientFailure()
		}
		return out
	}
	a, b := draw(42, 1000), draw(42, 1000)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed streams diverge at draw %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails < 200 || fails > 400 {
		t.Errorf("0.3-rate stream produced %d/1000 failures", fails)
	}
	c := draw(43, 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestTransientFailureZeroRateNoDraws(t *testing.T) {
	in := MustNew(Config{Seed: 1})
	for i := 0; i < 100; i++ {
		if in.TransientFailure() {
			t.Fatal("zero-rate stream reported a failure")
		}
	}
	if in.draws != 0 {
		t.Errorf("zero-rate stream made %d draws, want 0", in.draws)
	}
}

func TestDegraded(t *testing.T) {
	in := MustNew(Config{
		Crashes:         []NodeCrash{{Node: 0, Window: Window{1, 2}}},
		Stragglers:      []Straggler{{Node: 1, Factor: 2, Window: Window{3, 4}}},
		Degradations:    []NetDegradation{{Factor: 0.5, Window: Window{5, 6}}},
		PeriodicCrashes: []PeriodicCrash{{Node: 2, Period: 100, DownStart: 90, DownEnd: 100}},
	})
	for _, c := range []struct {
		t    float64
		want bool
	}{{0.5, false}, {1.5, true}, {2.5, false}, {3.5, true}, {4.5, false}, {5.5, true}, {95, true}, {150, false}, {195, true}} {
		if got := in.Degraded(c.t); got != c.want {
			t.Errorf("Degraded(%g) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestDegradedOverlap(t *testing.T) {
	in := MustNew(Config{
		Crashes:      []NodeCrash{{Node: 0, Window: Window{1, 3}}},
		Stragglers:   []Straggler{{Node: 1, Factor: 2, Window: Window{2, 5}}}, // overlaps the crash: union [1,5)
		Degradations: []NetDegradation{{Factor: 0.5, Window: Window{7, 8}}},
	})
	if got := in.DegradedOverlap(0, 10); math.Abs(got-5) > 1e-12 {
		t.Errorf("DegradedOverlap(0, 10) = %g, want 5 (union [1,5) + [7,8))", got)
	}
	if got := in.DegradedOverlap(4, 7.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("DegradedOverlap(4, 7.5) = %g, want 1.5", got)
	}
	if got := in.DegradedOverlap(8, 9); got != 0 {
		t.Errorf("DegradedOverlap(8, 9) = %g, want 0", got)
	}
	if got := in.DegradedOverlap(5, 5); got != 0 {
		t.Errorf("empty interval overlap = %g, want 0", got)
	}
}

func TestDegradedOverlapPeriodic(t *testing.T) {
	in := MustNew(Config{
		PeriodicCrashes: []PeriodicCrash{{Node: 0, Period: 10, DownStart: 0, DownEnd: 5}},
	})
	// Down half of every period: [0,5), [10,15), [20,25), ...
	if got := in.DegradedOverlap(0, 40); math.Abs(got-20) > 1e-9 {
		t.Errorf("DegradedOverlap(0, 40) = %g, want 20", got)
	}
	if got := in.DegradedOverlap(3, 12); math.Abs(got-4) > 1e-9 {
		t.Errorf("DegradedOverlap(3, 12) = %g, want 4 ([3,5) + [10,12))", got)
	}
	if got := in.DegradedOverlap(6, 9); got != 0 {
		t.Errorf("DegradedOverlap(6, 9) = %g, want 0", got)
	}
}
