package relation

import "testing"

func TestArenaExactSizeAndCapIsolation(t *testing.T) {
	var a Arena
	x := a.Int64s(4)
	if len(x) != 4 || cap(x) != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", len(x), cap(x))
	}
	y := a.Int64s(3)
	for i := range x {
		x[i] = 100 + int64(i)
	}
	for i := range y {
		y[i] = 200 + int64(i)
	}
	// cap == len means an append on x escapes to the heap instead of
	// clobbering y's slab region.
	x = append(x, 999)
	if y[0] != 200 || y[1] != 201 || y[2] != 202 {
		t.Fatalf("append on earlier allocation corrupted later one: %v", y)
	}
	if a.Int64s(0) != nil {
		t.Fatal("Int64s(0) should be nil")
	}
}

func TestArenaResetRecyclesSlabs(t *testing.T) {
	var a Arena
	const n = 1000
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			s := a.Int64s(n)
			for j := range s {
				s[j] = int64(round)
			}
		}
		a.Reset()
	}
	fp := a.Footprint()
	if fp == 0 {
		t.Fatal("footprint should count retained slabs")
	}
	// Identical rounds after Reset must not grow the arena.
	for i := 0; i < 50; i++ {
		a.Int64s(n)
	}
	a.Reset()
	if got := a.Footprint(); got != fp {
		t.Fatalf("footprint grew across identical rounds: %d -> %d", fp, got)
	}
}

func TestArenaOversizedAllocation(t *testing.T) {
	var a Arena
	huge := a.Int64s(arenaSlabInts * 3)
	if len(huge) != arenaSlabInts*3 {
		t.Fatalf("oversized allocation len = %d", len(huge))
	}
	small := a.Int64s(8)
	huge[len(huge)-1] = 7
	small[0] = 9
	if huge[len(huge)-1] != 7 {
		t.Fatal("oversized and small allocations overlap")
	}
}

func TestFromColumns(t *testing.T) {
	r := FromColumns("t", []string{"a", "b"}, [][]int64{{1, 2, 3}, {4, 5, 6}})
	if r.Rows() != 3 || r.NumCols() != 2 {
		t.Fatalf("rows/cols = %d/%d", r.Rows(), r.NumCols())
	}
	if got := r.Col("b")[1]; got != 5 {
		t.Fatalf("b[1] = %d", got)
	}
	if got := r.ColAt(0)[2]; got != 3 {
		t.Fatalf("ColAt(0)[2] = %d", got)
	}
	// Zero-copy: the relation aliases the caller's columns.
	data := [][]int64{{1, 2}}
	r2 := FromColumns("z", []string{"c"}, data)
	data[0][0] = 42
	if r2.Col("c")[0] != 42 {
		t.Fatal("FromColumns copied column storage; expected aliasing")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromColumns should panic")
		}
	}()
	FromColumns("bad", []string{"a", "b"}, [][]int64{{1, 2}, {1}})
}
