package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sample() *Relation {
	r := New("t", []string{"a", "b"})
	for i := int64(0); i < 10; i++ {
		r.AppendRow(i, i*2)
	}
	return r
}

func TestBasics(t *testing.T) {
	r := sample()
	if r.Rows() != 10 || r.NumCols() != 2 {
		t.Fatalf("shape = %d x %d", r.Rows(), r.NumCols())
	}
	if got := r.Col("b")[3]; got != 6 {
		t.Fatalf("Col(b)[3] = %d", got)
	}
	if !r.HasCol("a") || r.HasCol("z") {
		t.Fatalf("HasCol broken")
	}
	if r.ColIndex("b") != 1 || r.ColIndex("z") != -1 {
		t.Fatalf("ColIndex broken")
	}
	if cols := r.Columns(); len(cols) != 2 || cols[0] != "a" {
		t.Fatalf("Columns = %v", cols)
	}
	empty := New("e", nil)
	if empty.Rows() != 0 {
		t.Fatalf("empty Rows = %d", empty.Rows())
	}
}

func TestPanics(t *testing.T) {
	r := sample()
	for name, f := range map[string]func(){
		"dup column":     func() { New("x", []string{"a", "a"}) },
		"missing col":    func() { r.Col("zz") },
		"bad append len": func() { r.AppendRow(1) },
		"bad split key":  func() { r.SplitByHash([]string{"zz"}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAppendFromAndConcat(t *testing.T) {
	r := sample()
	o := New("o", []string{"b", "a"}) // different order; matched by name
	o.AppendFrom(r, 2)
	if o.Col("a")[0] != 2 || o.Col("b")[0] != 4 {
		t.Fatalf("AppendFrom = %v / %v", o.Col("a"), o.Col("b"))
	}
	o.Concat(r)
	if o.Rows() != 11 {
		t.Fatalf("Concat rows = %d", o.Rows())
	}
	if o.Col("b")[1] != 0 || o.Col("b")[10] != 18 {
		t.Fatalf("Concat data = %v", o.Col("b"))
	}
}

func TestProjectSharesStorage(t *testing.T) {
	r := sample()
	p := r.Project([]string{"b"})
	p.Col("b")[0] = 99
	if r.Col("b")[0] != 99 {
		t.Fatalf("Project copied storage")
	}
	if p.NumCols() != 1 {
		t.Fatalf("Project cols = %d", p.NumCols())
	}
}

func TestRename(t *testing.T) {
	r := sample()
	q := r.Rename("q", func(c string) string { return "x." + c })
	if !q.HasCol("x.a") || q.HasCol("a") {
		t.Fatalf("Rename cols = %v", q.Columns())
	}
	if q.Col("x.a")[5] != 5 {
		t.Fatalf("Rename lost data")
	}
}

func TestFilter(t *testing.T) {
	r := sample()
	f := r.Filter(func(row int) bool { return r.Col("a")[row]%2 == 0 })
	if f.Rows() != 5 {
		t.Fatalf("Filter rows = %d", f.Rows())
	}
	for _, v := range f.Col("a") {
		if v%2 != 0 {
			t.Fatalf("Filter kept odd value %d", v)
		}
	}
}

func TestClone(t *testing.T) {
	r := sample()
	c := r.Clone()
	c.Col("a")[0] = 42
	if r.Col("a")[0] == 42 {
		t.Fatalf("Clone shares storage")
	}
}

func TestSplitByHashPartitionsAllRows(t *testing.T) {
	r := New("t", []string{"k", "v"})
	for i := int64(0); i < 1000; i++ {
		r.AppendRow(i, i)
	}
	shards := r.SplitByHash([]string{"k"}, 4)
	total := 0
	for _, s := range shards {
		total += s.Rows()
	}
	if total != 1000 {
		t.Fatalf("shards lose rows: %d", total)
	}
	// Rough balance for a high-cardinality key.
	for i, s := range shards {
		if s.Rows() < 150 || s.Rows() > 350 {
			t.Fatalf("shard %d has %d rows (imbalanced)", i, s.Rows())
		}
	}
	// Determinism: same key -> same shard.
	shards2 := r.SplitByHash([]string{"k"}, 4)
	for i := range shards {
		if shards[i].Rows() != shards2[i].Rows() {
			t.Fatalf("split not deterministic")
		}
	}
}

func TestSplitByHashSkew(t *testing.T) {
	// A low-cardinality key (3 values) on 4 nodes must leave >= 1 node
	// empty — the physical origin of the paper's skew observation.
	r := New("t", []string{"k"})
	for i := int64(0); i < 300; i++ {
		r.AppendRow(i % 3)
	}
	shards := r.SplitByHash([]string{"k"}, 4)
	empty := 0
	for _, s := range shards {
		if s.Rows() == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatalf("expected at least one empty shard with 3 distinct keys on 4 nodes")
	}
}

func TestSplitByHashCompoundKeySpreads(t *testing.T) {
	// Compound (k1, k2) with 3x50 combinations spreads much better than k1
	// alone.
	r := New("t", []string{"k1", "k2"})
	for i := int64(0); i < 3000; i++ {
		r.AppendRow(i%3, i%50)
	}
	single := r.SplitByHash([]string{"k1"}, 4)
	compound := r.SplitByHash([]string{"k1", "k2"}, 4)
	maxRows := func(shards []*Relation) int {
		m := 0
		for _, s := range shards {
			if s.Rows() > m {
				m = s.Rows()
			}
		}
		return m
	}
	if maxRows(compound) >= maxRows(single) {
		t.Fatalf("compound key did not mitigate skew: %d vs %d", maxRows(compound), maxRows(single))
	}
}

func TestSplitRoundRobin(t *testing.T) {
	r := sample()
	shards := r.SplitRoundRobin(3)
	if shards[0].Rows() != 4 || shards[1].Rows() != 3 || shards[2].Rows() != 3 {
		t.Fatalf("round robin sizes = %d,%d,%d", shards[0].Rows(), shards[1].Rows(), shards[2].Rows())
	}
}

func TestSampleRateAndMinRows(t *testing.T) {
	r := New("t", []string{"a"})
	for i := int64(0); i < 10000; i++ {
		r.AppendRow(i)
	}
	rng := rand.New(rand.NewSource(1))
	s := r.Sample(0.1, 0, rng)
	if s.Rows() < 800 || s.Rows() > 1200 {
		t.Fatalf("10%% sample of 10000 = %d rows", s.Rows())
	}
	// Min-rows floor kicks in for tiny rates.
	s2 := r.Sample(0.0001, 500, rand.New(rand.NewSource(2)))
	if s2.Rows() < 500 {
		t.Fatalf("min-rows floor violated: %d", s2.Rows())
	}
	// A small table is returned (nearly) whole rather than inflated.
	small := sample()
	s3 := small.Sample(0.01, 500, rand.New(rand.NewSource(3)))
	if s3.Rows() > small.Rows() {
		t.Fatalf("sample larger than base: %d", s3.Rows())
	}
}

func TestHashRowDeterministicProperty(t *testing.T) {
	r := New("t", []string{"a", "b"})
	f := func(a, b int64) bool {
		r2 := New("t", []string{"a", "b"})
		r2.AppendRow(a, b)
		r3 := New("t", []string{"a", "b"})
		r3.AppendRow(a, b)
		return r2.HashRow(0, []int{0, 1}) == r3.HashRow(0, []int{0, 1})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestGrowPreservesData(t *testing.T) {
	r := sample()
	r.Grow(1000)
	if r.Rows() != 10 || r.Col("a")[9] != 9 {
		t.Fatalf("Grow corrupted data")
	}
	r.AppendRow(10, 20)
	if r.Rows() != 11 {
		t.Fatalf("append after Grow failed")
	}
}
