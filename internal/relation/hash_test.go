package relation

import (
	"fmt"
	"testing"
)

// TestHashAssignMatchesHashRow: the one-pass bucket assignment (including
// its single-column fast path) must agree with per-row HashRow hashing for
// every row.
func TestHashAssignMatchesHashRow(t *testing.T) {
	r := New("t", []string{"a", "b", "c"})
	for i := int64(0); i < 500; i++ {
		r.AppendRow(i*7, i%13, -i)
	}
	for _, keys := range [][]int{{0}, {1}, {0, 2}, {2, 1, 0}} {
		nodes := r.HashAssign(keys, 4)
		if len(nodes) != r.Rows() {
			t.Fatalf("keys %v: %d assignments for %d rows", keys, len(nodes), r.Rows())
		}
		for row, node := range nodes {
			if want := int32(r.HashRow(row, keys) % 4); node != want {
				t.Fatalf("keys %v row %d: assigned %d, HashRow says %d", keys, row, node, want)
			}
		}
	}
}

// TestScatterPreservesRowsAndOrder: SplitByHash and SplitRoundRobin must
// place every row on its assigned node with the base's relative row order
// preserved inside each shard (the invariant the cluster's shard cache and
// bytes-moved memoization rest on).
func TestScatterPreservesRowsAndOrder(t *testing.T) {
	r := New("t", []string{"k", "v"})
	for i := int64(0); i < 1000; i++ {
		r.AppendRow(i%37, i)
	}
	check := func(shards []*Relation, nodeOf func(row int) int32) {
		t.Helper()
		want := make([][]int64, len(shards))
		for row := 0; row < r.Rows(); row++ {
			n := nodeOf(row)
			want[n] = append(want[n], r.Col("v")[row])
		}
		for n, s := range shards {
			got := s.Col("v")
			if len(got) != len(want[n]) {
				t.Fatalf("shard %d: %d rows, want %d", n, len(got), len(want[n]))
			}
			for i := range got {
				if got[i] != want[n][i] {
					t.Fatalf("shard %d row %d: %d, want %d (order not preserved)", n, i, got[i], want[n][i])
				}
			}
		}
	}
	kIdx := []int{r.ColIndex("k")}
	check(r.SplitByHash([]string{"k"}, 5), func(row int) int32 {
		return int32(r.HashRow(row, kIdx) % 5)
	})
	check(r.SplitRoundRobin(5), func(row int) int32 {
		return int32(row % 5)
	})
}

// TestLookupNarrowAndWide: the ≤8-column linear-scan path and the wide
// eager-map path must be observationally identical, and duplicate columns
// must panic on both.
func TestLookupNarrowAndWide(t *testing.T) {
	for _, n := range []int{3, colIndexLinearMax, colIndexLinearMax + 1, 20} {
		cols := make([]string, n)
		for i := range cols {
			cols[i] = fmt.Sprintf("c%d", i)
		}
		r := New("t", cols)
		for i, c := range cols {
			if got := r.ColIndex(c); got != i {
				t.Fatalf("n=%d: ColIndex(%s) = %d, want %d", n, c, got, i)
			}
			if !r.HasCol(c) {
				t.Fatalf("n=%d: HasCol(%s) = false", n, c)
			}
		}
		if r.ColIndex("missing") != -1 || r.HasCol("missing") {
			t.Fatalf("n=%d: phantom column resolved", n)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d: duplicate column did not panic", n)
				}
			}()
			dup := append(append([]string(nil), cols...), cols[0])
			New("dup", dup)
		}()
	}
}

func benchRelation(rows int) *Relation {
	r := New("t", []string{"k", "a", "b", "c"})
	r.Grow(rows)
	for i := int64(0); i < int64(rows); i++ {
		r.AppendRow(i*2654435761%1_000_003, i, -i, i%97)
	}
	return r
}

func BenchmarkHashAssign(b *testing.B) {
	r := benchRelation(100_000)
	keys := []int{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.HashAssign(keys, 4)
	}
}

func BenchmarkSplitByHash(b *testing.B) {
	r := benchRelation(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SplitByHash([]string{"k"}, 4)
	}
}

func BenchmarkSplitRoundRobin(b *testing.B) {
	r := benchRelation(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SplitRoundRobin(4)
	}
}

func BenchmarkColLookupNarrow(b *testing.B) {
	r := benchRelation(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ColIndex("c")
	}
}

// TestDataBytes pins the residency arithmetic the shard cache budgets with.
func TestDataBytes(t *testing.T) {
	r := New("t", []string{"a", "b", "c"})
	if r.DataBytes() != 0 {
		t.Fatalf("empty DataBytes = %d", r.DataBytes())
	}
	for i := int64(0); i < 10; i++ {
		r.AppendRow(i, i, i)
	}
	if got := r.DataBytes(); got != 10*3*8 {
		t.Fatalf("DataBytes = %d, want %d", got, 10*3*8)
	}
}
