// Package relation provides the in-memory columnar table representation of
// the execution engine. All values are int64 (strings are dictionary-encoded
// via package valenc, dates as yyyymmdd integers) — a common simplification
// in analytical-engine prototypes that keeps scans, hashing and joins simple
// and fast.
package relation

import (
	"fmt"
	"math/rand"
)

// colIndexLinearMax is the column count up to which name lookups scan the
// slice directly instead of consulting (and therefore building) the idx map.
// Query intermediates are narrow, so most relations never pay a map at all.
const colIndexLinearMax = 8

// Relation is a named set of equal-length int64 columns.
type Relation struct {
	Name string
	cols []string
	// idx caches name→index for wide relations; narrow ones (the common
	// case for query intermediates) resolve names by linear scan instead,
	// so New never allocates a map for them (see lookup).
	idx  map[string]int
	data [][]int64
}

// New creates an empty relation with the given columns.
func New(name string, cols []string) *Relation {
	r := &Relation{Name: name, cols: append([]string(nil), cols...)}
	if len(cols) <= colIndexLinearMax {
		for i, c := range cols {
			for j := i + 1; j < len(cols); j++ {
				if cols[j] == c {
					panic(fmt.Sprintf("relation %s: duplicate column %q", name, c))
				}
			}
		}
	} else {
		r.idx = make(map[string]int, len(cols))
		for i, c := range cols {
			if _, dup := r.idx[c]; dup {
				panic(fmt.Sprintf("relation %s: duplicate column %q", name, c))
			}
			r.idx[c] = i
		}
	}
	r.data = make([][]int64, len(cols))
	return r
}

// lookup resolves a column name to its position. Narrow relations use a
// linear scan (faster than a map, and New never allocates one); wide ones
// are served from the idx map built at construction.
func (r *Relation) lookup(name string) (int, bool) {
	if r.idx != nil {
		i, ok := r.idx[name]
		return i, ok
	}
	for i, c := range r.cols {
		if c == name {
			return i, true
		}
	}
	return -1, false
}

// Columns returns the column names in order.
func (r *Relation) Columns() []string { return r.cols }

// NumCols returns the number of columns.
func (r *Relation) NumCols() int { return len(r.cols) }

// Rows returns the number of rows.
func (r *Relation) Rows() int {
	if len(r.data) == 0 {
		return 0
	}
	return len(r.data[0])
}

// DataBytes returns the resident size of the column storage in bytes —
// the unit the cluster's shard cache budgets in.
func (r *Relation) DataBytes() int64 {
	return int64(r.Rows()) * int64(len(r.cols)) * 8
}

// Col returns the storage of the named column (shared, do not resize).
func (r *Relation) Col(name string) []int64 {
	i, ok := r.lookup(name)
	if !ok {
		panic(fmt.Sprintf("relation %s: no column %q (have %v)", r.Name, name, r.cols))
	}
	return r.data[i]
}

// HasCol reports whether the column exists.
func (r *Relation) HasCol(name string) bool {
	_, ok := r.lookup(name)
	return ok
}

// ColIndex returns the position of the column, or -1.
func (r *Relation) ColIndex(name string) int {
	if i, ok := r.lookup(name); ok {
		return i
	}
	return -1
}

// AppendRow appends one row (len must equal NumCols).
func (r *Relation) AppendRow(vals ...int64) {
	if len(vals) != len(r.cols) {
		panic(fmt.Sprintf("relation %s: AppendRow got %d values, want %d", r.Name, len(vals), len(r.cols)))
	}
	for i, v := range vals {
		r.data[i] = append(r.data[i], v)
	}
}

// AppendFrom appends row i of src (which must share this relation's column
// set, matched by name).
func (r *Relation) AppendFrom(src *Relation, row int) {
	for ci, c := range r.cols {
		r.data[ci] = append(r.data[ci], src.Col(c)[row])
	}
}

// Grow pre-allocates capacity for n additional rows.
func (r *Relation) Grow(n int) {
	for i := range r.data {
		if cap(r.data[i])-len(r.data[i]) < n {
			nd := make([]int64, len(r.data[i]), len(r.data[i])+n)
			copy(nd, r.data[i])
			r.data[i] = nd
		}
	}
}

// Project returns a relation view restricted to the given columns (storage
// is shared with the receiver).
func (r *Relation) Project(cols []string) *Relation {
	p := New(r.Name, cols)
	for i, c := range cols {
		p.data[i] = r.Col(c)
	}
	return p
}

// Rename returns a relation with the same storage but renamed columns
// (e.g. qualifying base columns with a query alias).
func (r *Relation) Rename(newName string, rename func(col string) string) *Relation {
	cols := make([]string, len(r.cols))
	for i, c := range r.cols {
		cols[i] = rename(c)
	}
	p := New(newName, cols)
	copy(p.data, r.data)
	return p
}

// Filter returns the rows (as a new relation) for which keep returns true.
func (r *Relation) Filter(keep func(row int) bool) *Relation {
	out := New(r.Name, r.cols)
	n := r.Rows()
	for row := 0; row < n; row++ {
		if keep(row) {
			for ci := range r.cols {
				out.data[ci] = append(out.data[ci], r.data[ci][row])
			}
		}
	}
	return out
}

// Sample returns a deterministic Bernoulli sample of the rows at the given
// rate, guaranteeing at least minRows rows when the relation has that many
// (the paper's online phase requires a minimum table size after sampling,
// §4.2).
func (r *Relation) Sample(rate float64, minRows int, rng *rand.Rand) *Relation {
	n := r.Rows()
	out := r.Filter(func(int) bool { return rng.Float64() < rate })
	if out.Rows() >= minRows || out.Rows() == n {
		return out
	}
	// Top up deterministically with a prefix of the remaining rows.
	need := minRows
	if need > n {
		need = n
	}
	out2 := New(r.Name, r.cols)
	step := n / need
	if step < 1 {
		step = 1
	}
	for row := 0; row < n && out2.Rows() < need; row += step {
		out2.AppendFrom(r, row)
	}
	return out2
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvInt64 folds one int64 value into an FNV-1a state, byte by byte (fully
// unrolled: this is the innermost loop of hashing, shuffling and
// repartitioning).
func fnvInt64(h, v uint64) uint64 {
	h = (h ^ (v & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 8) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 16) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 24) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 32) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 40) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 48) & 0xff)) * fnvPrime64
	h = (h ^ (v >> 56)) * fnvPrime64
	return h
}

// HashRow hashes the given key columns of one row (FNV-1a over the raw
// int64 bytes). Used to assign rows to cluster nodes. Single-column keys —
// the overwhelmingly common case — take a branch-free fast path.
func (r *Relation) HashRow(row int, keyCols []int) uint64 {
	if len(keyCols) == 1 {
		return fnvInt64(fnvOffset64, uint64(r.data[keyCols[0]][row]))
	}
	h := uint64(fnvOffset64)
	for _, ci := range keyCols {
		h = fnvInt64(h, uint64(r.data[ci][row]))
	}
	return h
}

// HashAssign computes the per-row hash bucket (mod n) of every row for the
// given key columns in one pass. Reused by SplitByHash and by the cluster's
// moved-bytes accounting; the single-column fast path hashes straight down
// one column slice.
func (r *Relation) HashAssign(keyCols []int, n int) []int32 {
	rows := r.Rows()
	nodes := make([]int32, rows)
	if len(keyCols) == 1 {
		col := r.data[keyCols[0]]
		for row, v := range col {
			nodes[row] = int32(fnvInt64(fnvOffset64, uint64(v)) % uint64(n))
		}
		return nodes
	}
	for row := 0; row < rows; row++ {
		nodes[row] = int32(r.HashRow(row, keyCols) % uint64(n))
	}
	return nodes
}

// SplitByHash hash-partitions the relation into n shards by the given key
// columns: one hashing pass assigns rows to nodes, then each column is
// scattered with exact-capacity shard columns (no append-regrowth in the
// hot repartitioning path).
func (r *Relation) SplitByHash(keyCols []string, n int) []*Relation {
	idxs := make([]int, len(keyCols))
	for i, c := range keyCols {
		idxs[i] = r.ColIndex(c)
		if idxs[i] < 0 {
			panic(fmt.Sprintf("relation %s: no key column %q", r.Name, c))
		}
	}
	nodes := r.HashAssign(idxs, n)
	return r.scatter(nodes, n)
}

// scatter builds n shards from a per-row node assignment.
func (r *Relation) scatter(nodes []int32, n int) []*Relation {
	counts := make([]int, n)
	for _, node := range nodes {
		counts[node]++
	}
	shards := make([]*Relation, n)
	for i := range shards {
		shards[i] = New(r.Name, r.cols)
		for ci := range shards[i].data {
			shards[i].data[ci] = make([]int64, 0, counts[i])
		}
	}
	for ci := range r.cols {
		src := r.data[ci]
		for row, v := range src {
			sh := shards[nodes[row]]
			sh.data[ci] = append(sh.data[ci], v)
		}
	}
	return shards
}

// SplitByAssign builds n shards from an explicit per-row node assignment
// (len(nodes) == Rows(), each entry in [0, n)) — the escape hatch for
// placements plain hashing cannot express: salted keys, hot-key splits.
func (r *Relation) SplitByAssign(nodes []int32, n int) []*Relation {
	if len(nodes) != r.Rows() {
		panic(fmt.Sprintf("relation %s: assignment length %d != %d rows", r.Name, len(nodes), r.Rows()))
	}
	return r.scatter(nodes, n)
}

// SplitRoundRobin splits the relation into n equal shards (the layout of
// freshly bulk-loaded rows before any explicit partitioning).
func (r *Relation) SplitRoundRobin(n int) []*Relation {
	nodes := make([]int32, r.Rows())
	for row := range nodes {
		nodes[row] = int32(row % n)
	}
	return r.scatter(nodes, n)
}

// Concat appends all rows of src (same columns by name).
func (r *Relation) Concat(src *Relation) {
	for ci, c := range r.cols {
		r.data[ci] = append(r.data[ci], src.Col(c)...)
	}
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	c := New(r.Name, r.cols)
	for i := range r.data {
		c.data[i] = append([]int64(nil), r.data[i]...)
	}
	return c
}
