// Package relation provides the in-memory columnar table representation of
// the execution engine. All values are int64 (strings are dictionary-encoded
// via package valenc, dates as yyyymmdd integers) — a common simplification
// in analytical-engine prototypes that keeps scans, hashing and joins simple
// and fast.
package relation

import (
	"fmt"
	"math/rand"
)

// Relation is a named set of equal-length int64 columns.
type Relation struct {
	Name string
	cols []string
	idx  map[string]int
	data [][]int64
}

// New creates an empty relation with the given columns.
func New(name string, cols []string) *Relation {
	r := &Relation{Name: name, cols: append([]string(nil), cols...), idx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := r.idx[c]; dup {
			panic(fmt.Sprintf("relation %s: duplicate column %q", name, c))
		}
		r.idx[c] = i
	}
	r.data = make([][]int64, len(cols))
	return r
}

// Columns returns the column names in order.
func (r *Relation) Columns() []string { return r.cols }

// NumCols returns the number of columns.
func (r *Relation) NumCols() int { return len(r.cols) }

// Rows returns the number of rows.
func (r *Relation) Rows() int {
	if len(r.data) == 0 {
		return 0
	}
	return len(r.data[0])
}

// Col returns the storage of the named column (shared, do not resize).
func (r *Relation) Col(name string) []int64 {
	i, ok := r.idx[name]
	if !ok {
		panic(fmt.Sprintf("relation %s: no column %q (have %v)", r.Name, name, r.cols))
	}
	return r.data[i]
}

// HasCol reports whether the column exists.
func (r *Relation) HasCol(name string) bool {
	_, ok := r.idx[name]
	return ok
}

// ColIndex returns the position of the column, or -1.
func (r *Relation) ColIndex(name string) int {
	if i, ok := r.idx[name]; ok {
		return i
	}
	return -1
}

// AppendRow appends one row (len must equal NumCols).
func (r *Relation) AppendRow(vals ...int64) {
	if len(vals) != len(r.cols) {
		panic(fmt.Sprintf("relation %s: AppendRow got %d values, want %d", r.Name, len(vals), len(r.cols)))
	}
	for i, v := range vals {
		r.data[i] = append(r.data[i], v)
	}
}

// AppendFrom appends row i of src (which must share this relation's column
// set, matched by name).
func (r *Relation) AppendFrom(src *Relation, row int) {
	for ci, c := range r.cols {
		r.data[ci] = append(r.data[ci], src.Col(c)[row])
	}
}

// Grow pre-allocates capacity for n additional rows.
func (r *Relation) Grow(n int) {
	for i := range r.data {
		if cap(r.data[i])-len(r.data[i]) < n {
			nd := make([]int64, len(r.data[i]), len(r.data[i])+n)
			copy(nd, r.data[i])
			r.data[i] = nd
		}
	}
}

// Project returns a relation view restricted to the given columns (storage
// is shared with the receiver).
func (r *Relation) Project(cols []string) *Relation {
	p := New(r.Name, cols)
	for i, c := range cols {
		p.data[i] = r.Col(c)
	}
	return p
}

// Rename returns a relation with the same storage but renamed columns
// (e.g. qualifying base columns with a query alias).
func (r *Relation) Rename(newName string, rename func(col string) string) *Relation {
	cols := make([]string, len(r.cols))
	for i, c := range r.cols {
		cols[i] = rename(c)
	}
	p := New(newName, cols)
	copy(p.data, r.data)
	return p
}

// Filter returns the rows (as a new relation) for which keep returns true.
func (r *Relation) Filter(keep func(row int) bool) *Relation {
	out := New(r.Name, r.cols)
	n := r.Rows()
	for row := 0; row < n; row++ {
		if keep(row) {
			for ci := range r.cols {
				out.data[ci] = append(out.data[ci], r.data[ci][row])
			}
		}
	}
	return out
}

// Sample returns a deterministic Bernoulli sample of the rows at the given
// rate, guaranteeing at least minRows rows when the relation has that many
// (the paper's online phase requires a minimum table size after sampling,
// §4.2).
func (r *Relation) Sample(rate float64, minRows int, rng *rand.Rand) *Relation {
	n := r.Rows()
	out := r.Filter(func(int) bool { return rng.Float64() < rate })
	if out.Rows() >= minRows || out.Rows() == n {
		return out
	}
	// Top up deterministically with a prefix of the remaining rows.
	need := minRows
	if need > n {
		need = n
	}
	out2 := New(r.Name, r.cols)
	step := n / need
	if step < 1 {
		step = 1
	}
	for row := 0; row < n && out2.Rows() < need; row += step {
		out2.AppendFrom(r, row)
	}
	return out2
}

// HashRow hashes the given key columns of one row (FNV-1a over the raw
// int64 bytes). Used to assign rows to cluster nodes.
func (r *Relation) HashRow(row int, keyCols []int) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, ci := range keyCols {
		v := uint64(r.data[ci][row])
		for s := 0; s < 64; s += 8 {
			h ^= (v >> uint(s)) & 0xff
			h *= prime64
		}
	}
	return h
}

// SplitByHash hash-partitions the relation into n shards by the given key
// columns.
func (r *Relation) SplitByHash(keyCols []string, n int) []*Relation {
	idxs := make([]int, len(keyCols))
	for i, c := range keyCols {
		idxs[i] = r.ColIndex(c)
		if idxs[i] < 0 {
			panic(fmt.Sprintf("relation %s: no key column %q", r.Name, c))
		}
	}
	shards := make([]*Relation, n)
	for i := range shards {
		shards[i] = New(r.Name, r.cols)
	}
	rows := r.Rows()
	for row := 0; row < rows; row++ {
		node := int(r.HashRow(row, idxs) % uint64(n))
		for ci := range r.cols {
			shards[node].data[ci] = append(shards[node].data[ci], r.data[ci][row])
		}
	}
	return shards
}

// SplitRoundRobin splits the relation into n equal shards (the layout of
// freshly bulk-loaded rows before any explicit partitioning).
func (r *Relation) SplitRoundRobin(n int) []*Relation {
	shards := make([]*Relation, n)
	for i := range shards {
		shards[i] = New(r.Name, r.cols)
	}
	rows := r.Rows()
	for row := 0; row < rows; row++ {
		for ci := range r.cols {
			shards[row%n].data[ci] = append(shards[row%n].data[ci], r.data[ci][row])
		}
	}
	return shards
}

// Concat appends all rows of src (same columns by name).
func (r *Relation) Concat(src *Relation) {
	for ci, c := range r.cols {
		r.data[ci] = append(r.data[ci], src.Col(c)...)
	}
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	c := New(r.Name, r.cols)
	for i := range r.data {
		c.data[i] = append([]int64(nil), r.data[i]...)
	}
	return c
}
