package relation

// Arena is a bump allocator for int64 column storage. Query execution
// builds many short-lived intermediate relations (filtered scans, join
// outputs, shuffle targets) whose column data dies with the query; an
// arena lets an executor carve all of that storage out of a few reusable
// slabs and recycle them with a single Reset instead of leaving megabytes
// per query to the garbage collector.
//
// An Arena is NOT safe for concurrent use: each worker owns one. Slices
// returned by Int64s are handed out with cap == len, so an append past
// capacity escapes to the regular heap instead of overwriting slab space
// that a later allocation would receive — arena-backed relations stay
// safe even for callers that grow them.
//
// Lifecycle contract: everything allocated from an arena is invalidated
// by Reset. Callers must not retain arena-backed storage (directly or via
// FromColumns relations) across a Reset; the execution engine resets its
// per-worker arenas between queries, so executor intermediates must never
// leak into long-lived structures such as the cluster's shard cache.
type Arena struct {
	slabs [][]int64
	si    int // index of the slab currently allocated from
	off   int // next free offset within slabs[si]
}

// arenaSlabInts is the default slab size (64 Ki int64s = 512 KiB). A
// request larger than the remaining space of every existing slab gets a
// dedicated slab of exactly its size.
const arenaSlabInts = 64 << 10

// Int64s returns a slab-backed slice of length (and capacity) n. The
// contents are unspecified — callers must fully overwrite it. n == 0
// returns an empty slice without consuming slab space.
func (a *Arena) Int64s(n int) []int64 {
	if n == 0 {
		return nil
	}
	for {
		if a.si == len(a.slabs) {
			size := arenaSlabInts
			if n > size {
				size = n
			}
			a.slabs = append(a.slabs, make([]int64, size))
		}
		slab := a.slabs[a.si]
		if a.off+n <= len(slab) {
			s := slab[a.off : a.off+n : a.off+n]
			a.off += n
			return s
		}
		// Current slab exhausted for this request: move on. The skipped
		// tail is wasted until the next Reset — bounded by one request per
		// slab.
		a.si++
		a.off = 0
	}
}

// Reset recycles every slab: subsequent Int64s calls reuse the same
// backing memory. All previously returned slices are invalidated.
func (a *Arena) Reset() {
	a.si = 0
	a.off = 0
}

// Footprint returns the total bytes of slab memory the arena retains
// (diagnostics and tests).
func (a *Arena) Footprint() int64 {
	var n int64
	for _, s := range a.slabs {
		n += int64(len(s)) * 8
	}
	return n
}

// FromColumns wraps caller-owned column storage in a Relation without
// copying. All columns must have identical length; the slice of columns is
// adopted as-is (the caller must not resize it afterwards). This is the
// assembly point for arena-backed intermediates: the executor allocates
// exact-size columns from its arena, fills them, and wraps them here.
func FromColumns(name string, cols []string, data [][]int64) *Relation {
	if len(data) != len(cols) {
		panic("relation: FromColumns column/data count mismatch")
	}
	r := New(name, cols)
	for i := 1; i < len(data); i++ {
		if len(data[i]) != len(data[0]) {
			panic("relation: FromColumns ragged columns")
		}
	}
	copy(r.data, data)
	return r
}

// ColAt returns the storage of the column at position i (shared, do not
// resize) — the index-based sibling of Col for hot paths that have already
// resolved positions.
func (r *Relation) ColAt(i int) []int64 { return r.data[i] }
